// Package client is the Go client library for sss-server's binary client
// protocol. It implements the same kv.Store / kv.Txn vocabulary as the
// embedded engines, over TCP:
//
//	c, err := client.Dial("127.0.0.1:8000", client.Options{})
//	defer c.Close()
//
//	tx := c.Begin(false)
//	v, _, _ := tx.Read("greeting")
//	_ = tx.Write("greeting", append(v, '!'))
//	err = tx.Commit() // returns at external commit, like the embedded API
//
// One Client speaks to one server (one SSS node — clients are co-located
// with a coordinator, as in the paper's system model §II); DialCluster
// spreads transactions round-robin over several nodes. Each Client keeps a
// small pool of connections, pipelines concurrent requests over them
// (replies are matched by request ID), and redials dropped connections on
// next use. A transaction is pinned to the connection it began on — its
// server-side state lives in that session — so a mid-transaction disconnect
// surfaces kv.ErrUnavailable and the server aborts the transaction.
//
// Two mechanisms keep the wire cost of a transaction near its round-trip
// floor. Every connection runs a coalescing send queue (mirroring the
// node-to-node transport's per-peer outq): concurrent transactions'
// frames accumulated while the sender was busy go out as one buffered
// write with a single flush, tunable via Options.BatchMaxRequests and
// Options.BatchFlushWindow and observable via Metrics. And a whole
// read-only transaction can be collapsed into one round trip with
// SnapshotRead (kv.SnapshotReader), which begins, reads and finishes
// server-side; within an interactive transaction, Txn.MultiRead
// (kv.MultiReader) pipelines independent read legs the same way.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sss-paper/sss/internal/clientproto"
	"github.com/sss-paper/sss/internal/metrics"
	"github.com/sss-paper/sss/kv"
)

// Options tunes a Client. The zero value selects defaults.
type Options struct {
	// Conns is the connection-pool size per server (default 2).
	// Transactions are assigned round-robin at Begin.
	Conns int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one request/reply round trip (default 60s —
	// generous because Commit legitimately parks until external commit).
	// An expired request marks its transaction broken and its connection
	// suspect; both surface kv.ErrUnavailable.
	RequestTimeout time.Duration
	// BatchMaxRequests caps the request frames the per-connection send
	// queue coalesces into one wire flush (default 64, the transport's
	// MaxBatch). Concurrent transactions multiplexed on a connection
	// batch naturally: an idle connection flushes a lone request
	// immediately; a busy one amortizes the syscall over whatever
	// accumulated while the sender was writing.
	BatchMaxRequests int
	// BatchFlushWindow, when positive, makes the sender wait this long for
	// more requests before flushing a non-full batch — trading latency for
	// larger batches, useful when the network round trip dwarfs the window.
	// The default (0) flushes immediately.
	BatchFlushWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.BatchMaxRequests <= 0 {
		o.BatchMaxRequests = 64
	}
	return o
}

// Client is a connection-pooled handle to one sss-server. It implements
// kv.Store; handles from Begin implement kv.Txn. Safe for concurrent use —
// distinct transactions may run on distinct goroutines (each individual
// kv.Txn stays single-goroutine, per the interface contract).
type Client struct {
	addr  string
	opts  Options
	stats metrics.ClientNet

	mu     sync.Mutex
	slots  []*conn // lazily dialed; nil or dead entries redial on next use
	next   uint64  // round-robin cursor (atomic)
	closed bool
}

var (
	_ kv.Store          = (*Client)(nil)
	_ kv.SnapshotReader = (*Client)(nil)
)

// Dial connects to one server. The first connection is established eagerly
// so misconfiguration fails fast; the rest of the pool dials on demand.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	c.slots = make([]*conn, c.opts.Conns)
	if _, err := c.slot(0); err != nil {
		return nil, err
	}
	return c, nil
}

// Close tears down every pooled connection. Open transactions on them are
// aborted server-side.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	slots := c.slots
	c.slots = nil
	c.mu.Unlock()
	for _, cn := range slots {
		if cn != nil {
			cn.close(kv.ErrUnavailable)
		}
	}
	return nil
}

// Metrics exposes the client's wire counters: connections dialed
// (Sessions), requests issued, send-queue batching (flushes, requests per
// flush, enqueue→flush latency) and snapshot reads. Counters accumulate
// across redials.
func (c *Client) Metrics() *metrics.ClientNet { return &c.stats }

// SnapshotRead runs one complete read-only transaction — begin, read every
// key, finish — as a single request/reply round trip: the transaction
// executes entirely server-side, inheriting SSS's abort-free read-only
// guarantee, and the client pays 1 RTT where the interactive form pays
// 2+len(keys). Results align positionally with keys.
func (c *Client) SnapshotRead(keys []string) ([]kv.ReadResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(keys) > clientproto.MaxSnapshotKeys {
		return nil, fmt.Errorf("client: snapshot read of %d keys exceeds the %d-key limit", len(keys), clientproto.MaxSnapshotKeys)
	}
	cn, err := c.pick()
	if err != nil {
		return nil, err
	}
	c.stats.SnapshotReads.Add(1)
	rep, err := cn.call(&clientproto.Request{Op: clientproto.OpSnapshotRead, Keys: keys}, c.opts.RequestTimeout)
	if err != nil {
		return nil, err
	}
	if rep.Kind != clientproto.ReplyValues {
		return nil, replyError(rep)
	}
	if len(rep.Vals) != len(keys) {
		return nil, fmt.Errorf("client: snapshot read answered %d values for %d keys", len(rep.Vals), len(keys))
	}
	return rep.Vals, nil
}

// Ping performs one round trip on a pooled connection — the health /
// readiness probe.
func (c *Client) Ping() error {
	cn, err := c.pick()
	if err != nil {
		return err
	}
	rep, err := cn.call(&clientproto.Request{Op: clientproto.OpPing}, c.opts.RequestTimeout)
	if err != nil {
		return err
	}
	if rep.Kind != clientproto.ReplyOK {
		return replyError(rep)
	}
	return nil
}

// Begin implements kv.Store: it opens a transaction on a pooled connection.
// The kv.Store interface cannot surface connection errors from Begin, so a
// failed begin returns a handle whose every method reports the error.
func (c *Client) Begin(readOnly bool) kv.Txn {
	cn, err := c.pick()
	if err != nil {
		return &Txn{err: err}
	}
	rep, err := cn.call(&clientproto.Request{Op: clientproto.OpBegin, ReadOnly: readOnly}, c.opts.RequestTimeout)
	if err != nil {
		return &Txn{err: err}
	}
	if rep.Kind != clientproto.ReplyOK {
		return &Txn{err: replyError(rep)}
	}
	return &Txn{c: c, cn: cn, handle: rep.Txn}
}

// pick returns a live pooled connection, redialing dead slots.
func (c *Client) pick() (*conn, error) {
	i := int(atomic.AddUint64(&c.next, 1)) % c.opts.Conns
	return c.slot(i)
}

func (c *Client) slot(i int) (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: closed: %w", kv.ErrUnavailable)
	}
	if cn := c.slots[i]; cn != nil && !cn.isDead() {
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()

	// Dial outside the lock; only one winner installs per slot.
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %v: %w", c.addr, err, kv.ErrUnavailable)
	}
	cn := newConn(nc, c.opts, &c.stats)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		cn.close(kv.ErrUnavailable)
		return nil, fmt.Errorf("client: closed: %w", kv.ErrUnavailable)
	}
	if cur := c.slots[i]; cur != nil && !cur.isDead() {
		// Lost the redial race; use the winner and drop ours.
		cn.close(kv.ErrUnavailable)
		return cur, nil
	}
	c.slots[i] = cn
	return cn, nil
}

// Txn is a client-side transaction handle. Like every kv.Txn it must be
// driven by a single goroutine.
type Txn struct {
	c      *Client
	cn     *conn
	handle uint64
	err    error // sticky: set by a failed begin or a broken connection
	done   bool
}

var (
	_ kv.Txn         = (*Txn)(nil)
	_ kv.MultiReader = (*Txn)(nil)
)

// Read implements kv.Txn.
func (t *Txn) Read(key string) ([]byte, bool, error) {
	if err := t.usable(); err != nil {
		return nil, false, err
	}
	rep, err := t.call(&clientproto.Request{Op: clientproto.OpRead, Txn: t.handle, Key: key})
	if err != nil {
		return nil, false, err
	}
	if rep.Kind != clientproto.ReplyValue {
		return nil, false, replyError(rep)
	}
	return rep.Val, rep.Exists, nil
}

// MultiRead implements kv.MultiReader: it issues every read leg before
// awaiting any reply, so independent reads of one transaction pipeline on
// the connection — and, via the send queue, typically share a single wire
// frame — costing ~1 round trip instead of one per key. The server
// serializes same-handle requests in arrival order, so the results are
// exactly those of sequential Reads on the same snapshot.
func (t *Txn) MultiRead(keys []string) ([]kv.ReadResult, error) {
	if err := t.usable(); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, nil
	}
	reqs := make([]clientproto.Request, len(keys))
	chs := make([]chan clientproto.Reply, len(keys))
	for i, k := range keys {
		reqs[i] = clientproto.Request{Op: clientproto.OpRead, Txn: t.handle, Key: k}
		ch, err := t.cn.start(&reqs[i])
		if err != nil {
			t.err = err
			return nil, err
		}
		chs[i] = ch
	}
	out := make([]kv.ReadResult, len(keys))
	for i, ch := range chs {
		rep, err := t.cn.await(ch, t.c.opts.RequestTimeout)
		if err != nil {
			t.err = err
			return nil, err
		}
		if rep.Kind != clientproto.ReplyValue {
			// Later legs' replies, if any, land in their buffered channels
			// and are dropped with them — no goroutine is left waiting.
			return nil, replyError(rep)
		}
		out[i] = kv.ReadResult{Val: rep.Val, Exists: rep.Exists}
	}
	return out, nil
}

// Write implements kv.Txn. Oversized payloads are rejected client-side: an
// over-limit frame would make the server hang up on the whole multiplexed
// connection, aborting every other transaction pipelined on it, so the
// offending Write must fail alone without being sent.
func (t *Txn) Write(key string, val []byte) error {
	if err := t.usable(); err != nil {
		return err
	}
	if len(key)+len(val)+64 > clientproto.MaxFrame {
		return fmt.Errorf("client: write of %d bytes exceeds the %d-byte frame limit", len(val), clientproto.MaxFrame)
	}
	rep, err := t.call(&clientproto.Request{Op: clientproto.OpWrite, Txn: t.handle, Key: key, Val: val})
	if err != nil {
		return err
	}
	if rep.Kind != clientproto.ReplyOK {
		return replyError(rep)
	}
	return nil
}

// Commit implements kv.Txn. Like the embedded engine, it returns only at
// external commit.
func (t *Txn) Commit() error {
	if err := t.usable(); err != nil {
		return err
	}
	t.done = true
	rep, err := t.call(&clientproto.Request{Op: clientproto.OpCommit, Txn: t.handle})
	if err != nil {
		return err
	}
	if rep.Kind != clientproto.ReplyOK {
		return replyError(rep)
	}
	return nil
}

// Abort implements kv.Txn. Safe to call after a failed Commit (the server
// then reports the handle unknown, which Abort swallows, matching the
// embedded engines' idempotent Abort).
func (t *Txn) Abort() error {
	if t.err != nil || t.done {
		return nil
	}
	t.done = true
	rep, err := t.call(&clientproto.Request{Op: clientproto.OpAbort, Txn: t.handle})
	if err != nil {
		return nil // connection gone: the server aborts it for us
	}
	if rep.Kind != clientproto.ReplyOK && rep.Code != clientproto.CodeUnknownTxn {
		return replyError(rep)
	}
	return nil
}

func (t *Txn) usable() error {
	if t.err != nil {
		return t.err
	}
	if t.done {
		return kv.ErrTxnDone
	}
	return nil
}

func (t *Txn) call(req *clientproto.Request) (clientproto.Reply, error) {
	rep, err := t.cn.call(req, t.c.opts.RequestTimeout)
	if err != nil {
		// The session's fate is unknown (or the session is gone): poison
		// the handle. The server aborts the transaction when it notices
		// the dead connection.
		t.err = err
		return clientproto.Reply{}, err
	}
	return rep, nil
}

// replyError maps a typed protocol error onto the kv error vocabulary.
func replyError(rep clientproto.Reply) error {
	if rep.Kind != clientproto.ReplyErr {
		return fmt.Errorf("client: unexpected reply kind %d", rep.Kind)
	}
	switch rep.Code {
	case clientproto.CodeAborted:
		return kv.ErrAborted
	case clientproto.CodeReadOnlyWrite:
		return kv.ErrReadOnlyWrite
	case clientproto.CodeTxnDone, clientproto.CodeUnknownTxn:
		return kv.ErrTxnDone
	case clientproto.CodeUnavailable:
		return kv.ErrUnavailable
	default:
		return fmt.Errorf("client: server error %v: %s", rep.Code, rep.Msg)
	}
}

// conn is one pooled connection: a coalescing send queue drained by a
// sender goroutine, plus a demux goroutine matching pipelined replies to
// waiting callers by request ID.
//
// The send queue mirrors the transport's per-peer outq: callers enqueue and
// wake the sender; the sender writes whatever accumulated while it was busy
// as one buffered write with a single flush. An idle connection flushes a
// lone request immediately — coalescing costs nothing without concurrency —
// while concurrent transactions multiplexed on the connection share wire
// frames and syscalls.
type conn struct {
	nc    net.Conn
	bw    *bufio.Writer // owned by the sender goroutine
	opts  Options
	stats *metrics.ClientNet

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan clientproto.Reply
	queue   []queuedReq
	dead    bool
	err     error

	wake     chan struct{} // capacity 1: enqueue/close nudge the sender
	sendDone chan struct{} // closed when the sender goroutine exits
}

type queuedReq struct {
	req *clientproto.Request
	at  time.Time
}

func newConn(nc net.Conn, opts Options, stats *metrics.ClientNet) *conn {
	cn := &conn{
		nc:       nc,
		bw:       bufio.NewWriterSize(nc, 64<<10),
		opts:     opts,
		stats:    stats,
		pending:  make(map[uint64]chan clientproto.Reply),
		wake:     make(chan struct{}, 1),
		sendDone: make(chan struct{}),
	}
	stats.Sessions.Add(1)
	stats.ActiveSessions.Add(1)
	go cn.demux()
	go cn.sender()
	return cn
}

func (cn *conn) isDead() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.dead
}

// close marks the connection dead and fails every pending call with cause —
// including requests still sitting in the send queue, whose callers
// registered in pending before enqueueing. The sender and demux goroutines
// observe the closed connection and exit; redial builds a fresh conn, so a
// replaced slot leaves nothing behind.
func (cn *conn) close(cause error) {
	cn.mu.Lock()
	if cn.dead {
		cn.mu.Unlock()
		return
	}
	cn.dead = true
	cn.err = cause
	pending := cn.pending
	cn.pending = make(map[uint64]chan clientproto.Reply)
	cn.queue = nil
	cn.mu.Unlock()
	cn.stats.ActiveSessions.Add(-1)
	_ = cn.nc.Close()
	select {
	case cn.wake <- struct{}{}:
	default:
	}
	for _, ch := range pending {
		close(ch)
	}
}

// demux reads replies and delivers them to registered callers.
func (cn *conn) demux() {
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	for {
		rep, err := clientproto.ReadReply(br)
		if err != nil {
			cn.close(fmt.Errorf("client: connection lost: %v: %w", err, kv.ErrUnavailable))
			return
		}
		cn.mu.Lock()
		ch := cn.pending[rep.ReqID]
		delete(cn.pending, rep.ReqID)
		cn.mu.Unlock()
		if ch != nil {
			ch <- rep
		}
	}
}

// sender drains the queue, coalescing accumulated requests into one
// buffered write + flush per batch.
func (cn *conn) sender() {
	defer close(cn.sendDone)
	max := cn.opts.BatchMaxRequests
	batch := make([]queuedReq, 0, max)
	for {
		cn.mu.Lock()
		for len(cn.queue) == 0 {
			if cn.dead {
				cn.mu.Unlock()
				return
			}
			cn.mu.Unlock()
			<-cn.wake
			cn.mu.Lock()
		}
		full := len(cn.queue) >= max
		cn.mu.Unlock()

		// A window accumulates a bigger batch, but a full one flushes right
		// away so the window never caps throughput below max/window.
		if w := cn.opts.BatchFlushWindow; w > 0 && !full {
			time.Sleep(w)
		}

		cn.mu.Lock()
		if cn.dead {
			// close() already failed the queued callers; don't write into a
			// closed socket.
			cn.mu.Unlock()
			return
		}
		n := len(cn.queue)
		if n > max {
			n = max
		}
		batch = append(batch[:0], cn.queue[:n]...)
		rest := copy(cn.queue, cn.queue[n:])
		for i := rest; i < len(cn.queue); i++ {
			cn.queue[i] = queuedReq{} // don't retain written requests
		}
		cn.queue = cn.queue[:rest]
		cn.mu.Unlock()

		oldest := batch[0].at
		var err error
		for i := range batch {
			if err = clientproto.WriteRequest(cn.bw, batch[i].req); err != nil {
				break
			}
		}
		if err == nil {
			err = cn.bw.Flush()
		}
		if err != nil {
			cn.close(fmt.Errorf("client: write failed: %v: %w", err, kv.ErrUnavailable))
			return
		}
		cn.stats.BatchFlushes.Add(1)
		cn.stats.BatchRequests.Add(uint64(len(batch)))
		cn.stats.BatchFlushLatency.Observe(time.Since(oldest))
	}
}

// start registers req and enqueues it for the sender, returning the channel
// its reply will arrive on. The caller must await the channel (the request
// memory is retained until written).
func (cn *conn) start(req *clientproto.Request) (chan clientproto.Reply, error) {
	ch := make(chan clientproto.Reply, 1)
	cn.mu.Lock()
	if cn.dead {
		err := cn.err
		cn.mu.Unlock()
		if err == nil {
			err = kv.ErrUnavailable
		}
		return nil, err
	}
	cn.nextID++
	req.ReqID = cn.nextID
	cn.pending[req.ReqID] = ch
	cn.queue = append(cn.queue, queuedReq{req: req, at: time.Now()})
	cn.mu.Unlock()
	cn.stats.Requests.Add(1)
	select {
	case cn.wake <- struct{}{}:
	default:
	}
	return ch, nil
}

// await blocks for the reply on ch, bounded by timeout.
func (cn *conn) await(ch chan clientproto.Reply, timeout time.Duration) (clientproto.Reply, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case rep, ok := <-ch:
		if !ok {
			cn.mu.Lock()
			err := cn.err
			cn.mu.Unlock()
			if err == nil {
				err = kv.ErrUnavailable
			}
			return clientproto.Reply{}, err
		}
		return rep, nil
	case <-timer.C:
		// The session's state is now unknowable; kill the connection so
		// the server aborts everything on it and the pool redials fresh.
		cn.close(fmt.Errorf("client: request timeout after %v: %w", timeout, kv.ErrUnavailable))
		return clientproto.Reply{}, kv.ErrUnavailable
	}
}

// call performs one pipelined round trip: register, enqueue, await.
func (cn *conn) call(req *clientproto.Request, timeout time.Duration) (clientproto.Reply, error) {
	ch, err := cn.start(req)
	if err != nil {
		return clientproto.Reply{}, err
	}
	return cn.await(ch, timeout)
}

// Cluster is a round-robin facade over one Client per server address: each
// Begin is coordinated by the next node, mimicking the paper's co-located
// client placement spread over the whole cluster.
type Cluster struct {
	clients []*Client
	next    uint64
}

var (
	_ kv.Store          = (*Cluster)(nil)
	_ kv.SnapshotReader = (*Cluster)(nil)
)

// DialCluster connects to every address. On any failure the already-dialed
// clients are closed.
func DialCluster(addrs []string, opts Options) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: no addresses")
	}
	cl := &Cluster{}
	for _, a := range addrs {
		c, err := Dial(a, opts)
		if err != nil {
			_ = cl.Close()
			return nil, err
		}
		cl.clients = append(cl.clients, c)
	}
	return cl, nil
}

// Begin implements kv.Store, rotating coordinators per transaction.
func (cl *Cluster) Begin(readOnly bool) kv.Txn {
	i := int(atomic.AddUint64(&cl.next, 1)) % len(cl.clients)
	return cl.clients[i].Begin(readOnly)
}

// SnapshotRead implements kv.SnapshotReader, rotating coordinators like
// Begin: the one-round read-only transaction runs on the next node.
func (cl *Cluster) SnapshotRead(keys []string) ([]kv.ReadResult, error) {
	i := int(atomic.AddUint64(&cl.next, 1)) % len(cl.clients)
	return cl.clients[i].SnapshotRead(keys)
}

// Node returns the i-th node's client.
func (cl *Cluster) Node(i int) *Client { return cl.clients[i] }

// NumNodes returns the cluster size.
func (cl *Cluster) NumNodes() int { return len(cl.clients) }

// Close closes every client.
func (cl *Cluster) Close() error {
	var firstErr error
	for _, c := range cl.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
