package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sss-paper/sss/internal/clientproto"
	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/engine"
	"github.com/sss-paper/sss/internal/transport"
	"github.com/sss-paper/sss/kv"
)

type storeFunc func(readOnly bool) kv.Txn

func (f storeFunc) Begin(readOnly bool) kv.Txn { return f(readOnly) }

// startServer boots a single-node engine behind a clientproto.Server and
// returns its address plus the server (for metrics assertions).
func startServer(t testing.TB) (string, *clientproto.Server) {
	t.Helper()
	net_ := transport.NewInProc(transport.InProcConfig{DisableLatency: true})
	nd, err := engine.New(net_, 0, 1, cluster.NewLookup(1, 1), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nd.Close()
		_ = net_.Close()
	})
	for i := 0; i < 32; i++ {
		nd.Preload(fmt.Sprintf("k%02d", i), []byte("init"))
	}
	srv := clientproto.NewServer(storeFunc(func(ro bool) kv.Txn { return nd.Begin(ro) }), clientproto.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

func TestClientReadWriteCommit(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	tx := c.Begin(false)
	v, ok, err := tx.Read("k00")
	if err != nil || !ok || string(v) != "init" {
		t.Fatalf("read: %q %v %v", v, ok, err)
	}
	if err := tx.Write("k00", []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	ro := c.Begin(true)
	v, ok, err = ro.Read("k00")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("ro read: %q %v %v", v, ok, err)
	}
	if _, ok, err := ro.Read("nope"); err != nil || ok {
		t.Fatalf("missing key: %v %v", ok, err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("ro commit: %v", err)
	}
}

func TestClientErrorMapping(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ro := c.Begin(true)
	if err := ro.Write("k01", []byte("x")); !errors.Is(err, kv.ErrReadOnlyWrite) {
		t.Fatalf("ro write: %v", err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("ro commit: %v", err)
	}
	// Use-after-finish maps to ErrTxnDone locally.
	if _, _, err := ro.Read("k01"); !errors.Is(err, kv.ErrTxnDone) {
		t.Fatalf("read after commit: %v", err)
	}
	// Abort after commit is a no-op.
	if err := ro.Abort(); err != nil {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestClientConcurrentTxns(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%02d", i%8)
			ro := i%3 == 0
			tx := c.Begin(ro)
			for j := 0; j < 4; j++ {
				if _, _, err := tx.Read(key); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !ro {
					if err := tx.Write(key, []byte{byte(i), byte(j)}); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
			}
			if err := tx.Commit(); err != nil && !errors.Is(err, kv.ErrAborted) {
				t.Errorf("commit: %v", err)
			}
		}(i)
	}
	wg.Wait()
}

// TestClientReconnect kills the server-side sessions and verifies the pool
// redials: in-flight transactions fail with ErrUnavailable, new Begins
// succeed.
func TestClientReconnect(t *testing.T) {
	addr, srv := startServer(t)
	c, err := Dial(addr, Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	tx := c.Begin(false)
	if _, _, err := tx.Read("k00"); err != nil {
		t.Fatalf("read: %v", err)
	}

	// Tear down every server session (simulates a server-side drop). The
	// listener stays up, so redial succeeds.
	_ = srv.Close()
	// Wait for the client's demux to notice.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, err := tx.Read("k00"); err != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, err := tx.Read("k00"); !errors.Is(err, kv.ErrUnavailable) {
		t.Fatalf("read on dead conn: %v", err)
	}

	// A fresh server on the same address: Begin must redial transparently.
	net_ := transport.NewInProc(transport.InProcConfig{DisableLatency: true})
	nd, err := engine.New(net_, 0, 1, cluster.NewLookup(1, 1), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nd.Close()
		_ = net_.Close()
	})
	nd.Preload("k00", []byte("fresh"))
	srv2 := clientproto.NewServer(storeFunc(func(ro bool) kv.Txn { return nd.Begin(ro) }), clientproto.ServerOptions{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(ln) }()
	t.Cleanup(func() { _ = srv2.Close() })

	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		tx2 := c.Begin(true)
		var v []byte
		v, _, lastErr = tx2.Read("k00")
		if lastErr == nil {
			if string(v) != "fresh" {
				t.Fatalf("read after reconnect: %q", v)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatalf("commit after reconnect: %v", err)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never reconnected: %v", lastErr)
}

func TestDialCluster(t *testing.T) {
	addr1, _ := startServer(t)
	addr2, _ := startServer(t)
	cl, err := DialCluster([]string{addr1, addr2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if cl.NumNodes() != 2 {
		t.Fatalf("nodes: %d", cl.NumNodes())
	}
	// Round-robin Begins land on both nodes (separate single-node engines,
	// so each sees its own keyspace).
	for i := 0; i < 4; i++ {
		tx := cl.Begin(true)
		if _, _, err := tx.Read("k00"); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Options{DialTimeout: 200 * time.Millisecond}); !errors.Is(err, kv.ErrUnavailable) {
		t.Fatalf("dial to closed port: %v", err)
	}
}

func TestClientSnapshotRead(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Empty key set short-circuits without a round trip.
	if res, err := c.SnapshotRead(nil); res != nil || err != nil {
		t.Fatalf("empty snapshot read: %v %v", res, err)
	}
	// Over-limit key sets are rejected client-side.
	if _, err := c.SnapshotRead(make([]string, clientproto.MaxSnapshotKeys+1)); err == nil {
		t.Fatal("over-limit snapshot read accepted")
	}

	res, err := c.SnapshotRead([]string{"k00", "nope", "k01"})
	if err != nil {
		t.Fatalf("snapshot read: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("snapshot read returned %d results", len(res))
	}
	if !res[0].Exists || string(res[0].Val) != "init" {
		t.Fatalf("k00: %+v", res[0])
	}
	if res[1].Exists {
		t.Fatalf("missing key reported present: %+v", res[1])
	}
	if !res[2].Exists || string(res[2].Val) != "init" {
		t.Fatalf("k01: %+v", res[2])
	}

	// A committed write is visible to a later snapshot read.
	tx := c.Begin(false)
	if _, _, err := tx.Read("k02"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("k02", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err = c.SnapshotRead([]string{"k02"})
	if err != nil || !res[0].Exists || string(res[0].Val) != "fresh" {
		t.Fatalf("snapshot read after commit: %+v %v", res, err)
	}

	if got := c.Metrics().SnapshotReads.Load(); got != 2 {
		t.Fatalf("snapshot-read counter: %d", got)
	}
}

func TestClientMultiRead(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	tx := c.Begin(true)
	mr := tx.(kv.MultiReader)
	if res, err := mr.MultiRead(nil); res != nil || err != nil {
		t.Fatalf("empty multi-read: %v %v", res, err)
	}
	res, err := mr.MultiRead([]string{"k03", "nope", "k04"})
	if err != nil {
		t.Fatalf("multi-read: %v", err)
	}
	if len(res) != 3 || !res[0].Exists || string(res[0].Val) != "init" || res[1].Exists || !res[2].Exists {
		t.Fatalf("multi-read results: %+v", res)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Use-after-finish fails like Read does.
	if _, err := mr.MultiRead([]string{"k03"}); !errors.Is(err, kv.ErrTxnDone) {
		t.Fatalf("multi-read after commit: %v", err)
	}
}

// TestClientBatchCoalescing drives concurrent traffic through a single
// connection with a flush window and checks the send queue actually
// coalesces: every request is accounted to a flush, and flushes carry more
// than one request on average.
func TestClientBatchCoalescing(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{Conns: 1, BatchMaxRequests: 8, BatchFlushWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Ping(); err != nil {
				t.Errorf("ping: %v", err)
			}
		}()
	}
	wg.Wait()

	m := c.Metrics()
	if got := m.Requests.Load(); got != n {
		t.Fatalf("requests: %d", got)
	}
	if flushed := m.BatchRequests.Load(); flushed != n {
		t.Fatalf("batched requests: %d of %d", flushed, n)
	}
	if rpf := m.RequestsPerFlush(); rpf <= 1.5 {
		t.Fatalf("no coalescing: %.2f requests/flush over %d flushes", rpf, m.BatchFlushes.Load())
	}
}

// TestClientBatchCapOne is the batching boundary: with BatchMaxRequests=1
// every request is its own flush, and everything still completes.
func TestClientBatchCapOne(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{Conns: 1, BatchMaxRequests: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Ping(); err != nil {
				t.Errorf("ping: %v", err)
			}
		}()
	}
	wg.Wait()

	m := c.Metrics()
	if m.BatchFlushes.Load() != m.BatchRequests.Load() {
		t.Fatalf("cap-1 batches coalesced: %d flushes for %d requests",
			m.BatchFlushes.Load(), m.BatchRequests.Load())
	}
}

// TestClientOrderingUnderBatching runs concurrent transactions through an
// aggressively batched single connection and verifies no reply is lost or
// misrouted: every transaction reads back exactly what it wrote.
func TestClientOrderingUnderBatching(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{Conns: 1, BatchMaxRequests: 4, BatchFlushWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%02d", i%32)
			want := []byte(fmt.Sprintf("w%d", i))
			for attempt := 0; attempt < 20; attempt++ {
				tx := c.Begin(false)
				if _, _, err := tx.Read(key); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if err := tx.Write(key, want); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				v, ok, err := tx.Read(key)
				if err != nil || !ok || string(v) != string(want) {
					t.Errorf("read-own-write: %q ok=%v err=%v", v, ok, err)
					return
				}
				err = tx.Commit()
				if err == nil {
					return
				}
				if !errors.Is(err, kv.ErrAborted) {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestClientDrainOnClose closes the client while requests are in flight and
// queued: every caller must fail fast with kv.ErrUnavailable instead of
// hanging on a never-flushed queue entry.
func TestClientDrainOnClose(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{Conns: 1, BatchMaxRequests: 2, BatchFlushWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := c.Ping(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let traffic build up mid-window
	_ = c.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pending requests did not drain on Close")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, kv.ErrUnavailable) {
			t.Fatalf("drain error: %v", err)
		}
	}
}

// TestClientRedialUnderLoad bounces the server while concurrent workers
// hammer transactions: in-flight work fails with the kv error vocabulary
// (never hangs, never misroutes), and after the bounce the pool redials and
// makes progress again.
func TestClientRedialUnderLoad(t *testing.T) {
	addr, srv := startServer(t)
	c, err := Dial(addr, Options{Conns: 2, BatchFlushWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	stop := make(chan struct{})
	var after atomic.Uint64 // successful txns after the bounce
	bounced := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%02d", i%8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := c.Begin(i%2 == 0)
				_, _, err := tx.Read(key)
				if err == nil {
					err = tx.Commit()
				}
				switch {
				case err == nil:
					select {
					case <-bounced:
						after.Add(1)
					default:
					}
				case errors.Is(err, kv.ErrUnavailable),
					errors.Is(err, kv.ErrAborted),
					errors.Is(err, kv.ErrTxnDone):
					// Expected during and right after the bounce.
				default:
					t.Errorf("unexpected error under redial: %v", err)
					return
				}
			}
		}(i)
	}

	time.Sleep(20 * time.Millisecond)
	_ = srv.Close() // kills the listener and every session

	// Fresh server on the same address; the pool must redial into it.
	net_ := transport.NewInProc(transport.InProcConfig{DisableLatency: true})
	nd, err := engine.New(net_, 0, 1, cluster.NewLookup(1, 1), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nd.Close()
		_ = net_.Close()
	})
	for i := 0; i < 8; i++ {
		nd.Preload(fmt.Sprintf("k%02d", i), []byte("back"))
	}
	srv2 := clientproto.NewServer(storeFunc(func(ro bool) kv.Txn { return nd.Begin(ro) }), clientproto.ServerOptions{})
	var ln net.Listener
	for attempt := 0; attempt < 100; attempt++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	go func() { _ = srv2.Serve(ln) }()
	t.Cleanup(func() { _ = srv2.Close() })
	close(bounced)

	deadline := time.Now().Add(10 * time.Second)
	for after.Load() < 8 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := after.Load(); got < 8 {
		t.Fatalf("only %d transactions succeeded after the bounce", got)
	}
}
