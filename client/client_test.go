package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/sss-paper/sss/internal/clientproto"
	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/engine"
	"github.com/sss-paper/sss/internal/transport"
	"github.com/sss-paper/sss/kv"
)

type storeFunc func(readOnly bool) kv.Txn

func (f storeFunc) Begin(readOnly bool) kv.Txn { return f(readOnly) }

// startServer boots a single-node engine behind a clientproto.Server and
// returns its address plus the server (for metrics assertions).
func startServer(t *testing.T) (string, *clientproto.Server) {
	t.Helper()
	net_ := transport.NewInProc(transport.InProcConfig{DisableLatency: true})
	nd, err := engine.New(net_, 0, 1, cluster.NewLookup(1, 1), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nd.Close()
		_ = net_.Close()
	})
	for i := 0; i < 32; i++ {
		nd.Preload(fmt.Sprintf("k%02d", i), []byte("init"))
	}
	srv := clientproto.NewServer(storeFunc(func(ro bool) kv.Txn { return nd.Begin(ro) }), clientproto.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

func TestClientReadWriteCommit(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	tx := c.Begin(false)
	v, ok, err := tx.Read("k00")
	if err != nil || !ok || string(v) != "init" {
		t.Fatalf("read: %q %v %v", v, ok, err)
	}
	if err := tx.Write("k00", []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	ro := c.Begin(true)
	v, ok, err = ro.Read("k00")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("ro read: %q %v %v", v, ok, err)
	}
	if _, ok, err := ro.Read("nope"); err != nil || ok {
		t.Fatalf("missing key: %v %v", ok, err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("ro commit: %v", err)
	}
}

func TestClientErrorMapping(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ro := c.Begin(true)
	if err := ro.Write("k01", []byte("x")); !errors.Is(err, kv.ErrReadOnlyWrite) {
		t.Fatalf("ro write: %v", err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("ro commit: %v", err)
	}
	// Use-after-finish maps to ErrTxnDone locally.
	if _, _, err := ro.Read("k01"); !errors.Is(err, kv.ErrTxnDone) {
		t.Fatalf("read after commit: %v", err)
	}
	// Abort after commit is a no-op.
	if err := ro.Abort(); err != nil {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestClientConcurrentTxns(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, Options{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%02d", i%8)
			ro := i%3 == 0
			tx := c.Begin(ro)
			for j := 0; j < 4; j++ {
				if _, _, err := tx.Read(key); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !ro {
					if err := tx.Write(key, []byte{byte(i), byte(j)}); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
			}
			if err := tx.Commit(); err != nil && !errors.Is(err, kv.ErrAborted) {
				t.Errorf("commit: %v", err)
			}
		}(i)
	}
	wg.Wait()
}

// TestClientReconnect kills the server-side sessions and verifies the pool
// redials: in-flight transactions fail with ErrUnavailable, new Begins
// succeed.
func TestClientReconnect(t *testing.T) {
	addr, srv := startServer(t)
	c, err := Dial(addr, Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	tx := c.Begin(false)
	if _, _, err := tx.Read("k00"); err != nil {
		t.Fatalf("read: %v", err)
	}

	// Tear down every server session (simulates a server-side drop). The
	// listener stays up, so redial succeeds.
	_ = srv.Close()
	// Wait for the client's demux to notice.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, err := tx.Read("k00"); err != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, err := tx.Read("k00"); !errors.Is(err, kv.ErrUnavailable) {
		t.Fatalf("read on dead conn: %v", err)
	}

	// A fresh server on the same address: Begin must redial transparently.
	net_ := transport.NewInProc(transport.InProcConfig{DisableLatency: true})
	nd, err := engine.New(net_, 0, 1, cluster.NewLookup(1, 1), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nd.Close()
		_ = net_.Close()
	})
	nd.Preload("k00", []byte("fresh"))
	srv2 := clientproto.NewServer(storeFunc(func(ro bool) kv.Txn { return nd.Begin(ro) }), clientproto.ServerOptions{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(ln) }()
	t.Cleanup(func() { _ = srv2.Close() })

	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		tx2 := c.Begin(true)
		var v []byte
		v, _, lastErr = tx2.Read("k00")
		if lastErr == nil {
			if string(v) != "fresh" {
				t.Fatalf("read after reconnect: %q", v)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatalf("commit after reconnect: %v", err)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never reconnected: %v", lastErr)
}

func TestDialCluster(t *testing.T) {
	addr1, _ := startServer(t)
	addr2, _ := startServer(t)
	cl, err := DialCluster([]string{addr1, addr2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if cl.NumNodes() != 2 {
		t.Fatalf("nodes: %d", cl.NumNodes())
	}
	// Round-robin Begins land on both nodes (separate single-node engines,
	// so each sees its own keyspace).
	for i := 0; i < 4; i++ {
		tx := cl.Begin(true)
		if _, _, err := tx.Read("k00"); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Options{DialTimeout: 200 * time.Millisecond}); !errors.Is(err, kv.ErrUnavailable) {
		t.Fatalf("dial to closed port: %v", err)
	}
}
