// Package kv defines the public transactional key-value vocabulary shared
// by the SSS engine and the competitor engines (2PC-baseline, Walter,
// ROCOCO): the Store/Txn interfaces and the error values every engine
// reports.
//
// All four engines in this repository implement Store, which is what lets
// the benchmark harness drive them identically — mirroring the paper's
// methodology of re-implementing every competitor on the same
// infrastructure (§V).
package kv

import "errors"

// Store is a transactional key-value store embedded in one node of a
// cluster. Clients are co-located with nodes (§II): a Store handle is bound
// to its node, and transactions begun on it are coordinated there.
type Store interface {
	// Begin starts a transaction. Read-only transactions must be declared
	// (§II: "SSS requires programmer to identify whether a transaction is
	// update or read-only"); in exchange SSS never aborts them.
	Begin(readOnly bool) Txn
}

// Txn is a transaction handle. Handles are not safe for concurrent use by
// multiple goroutines; a transaction is one client's sequential program.
type Txn interface {
	// Read returns the value of key visible to this transaction, and
	// whether the key exists.
	Read(key string) ([]byte, bool, error)
	// Write buffers an update of key. It fails on read-only transactions.
	Write(key string, val []byte) error
	// Commit finishes the transaction. For update transactions the call
	// returns only at external commit — after every concurrency-control
	// obligation to concurrent readers is discharged — so the moment
	// Commit returns is the paper's client-observable completion point.
	// It returns ErrAborted if validation or locking failed.
	Commit() error
	// Abort abandons the transaction. Safe to call after a failed Commit.
	Abort() error
}

// ReadResult is one key's outcome in a multi-key read (MultiReader,
// SnapshotReader): the visible value and whether the key exists.
type ReadResult struct {
	Val    []byte
	Exists bool
}

// MultiReader is an optional Txn capability: read several independent keys
// as one operation. Implementations that multiplex a network connection
// (the TCP client) issue the reads concurrently over it, so a transaction's
// independent read legs cost one round trip instead of one per key; results
// are positionally aligned with keys. Semantically it is exactly the
// sequence of Txn.Read calls — same snapshot, same errors.
type MultiReader interface {
	MultiRead(keys []string) ([]ReadResult, error)
}

// SnapshotReader is an optional Store capability: run one complete
// read-only transaction — begin, read every key, finish — as a single
// operation. On SSS this inherits the abort-free guarantee of declared
// read-only transactions; on the TCP client it collapses the whole
// transaction into one client↔server round trip (the begin, reads and
// finish run server-side). Results are positionally aligned with keys.
type SnapshotReader interface {
	SnapshotRead(keys []string) ([]ReadResult, error)
}

// Errors shared by all engines.
var (
	// ErrAborted reports that the transaction lost a conflict (failed
	// validation, lock timeout, or competitor-specific interference) and
	// its effects were discarded. Callers typically retry.
	ErrAborted = errors.New("kv: transaction aborted")
	// ErrReadOnlyWrite reports a Write on a read-only transaction.
	ErrReadOnlyWrite = errors.New("kv: write in read-only transaction")
	// ErrTxnDone reports use of a finished transaction handle.
	ErrTxnDone = errors.New("kv: transaction already finished")
	// ErrUnavailable reports that the node could not reach the replicas
	// it needed within its timeouts.
	ErrUnavailable = errors.New("kv: replicas unavailable")
)
