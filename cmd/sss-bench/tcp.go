package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"github.com/sss-paper/sss/client"
	"github.com/sss-paper/sss/internal/bench"
	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/harness"
	"github.com/sss-paper/sss/internal/metrics"
	"github.com/sss-paper/sss/internal/obs"
	"github.com/sss-paper/sss/internal/ycsb"
	"github.com/sss-paper/sss/kv"
)

// figure3TCP is the distributed counterpart of figure3: the same
// throughput-vs-nodes sweep, but each point boots a real multi-process
// cluster (one sss-server per node) and drives it through the public client
// package over loopback TCP. Only the SSS engine runs — the competitors
// have no server binary. Latencies are measured at the client (begin →
// commit return), i.e. they include the client protocol round trips, which
// is the deployment-honest number.
func figure3TCP(nodeCounts []int) {
	bin := *serverBin
	if bin == "" {
		dir, err := os.MkdirTemp("", "sss-bench-bin-*")
		if err != nil {
			log.Fatalf("tcp bench: %v", err)
		}
		defer func() { _ = os.RemoveAll(dir) }()
		fmt.Println("building sss-server...")
		bin, err = harness.BuildServer(dir)
		if err != nil {
			log.Fatalf("tcp bench: %v", err)
		}
	}
	roPcts, err := parseInts(*tcpRO)
	if err != nil {
		log.Fatalf("-tcp-ro: %v", err)
	}
	keySizes, err := parseInts(*tcpKeys)
	if err != nil {
		log.Fatalf("-tcp-keys: %v", err)
	}
	delays := []time.Duration{0}
	rttSweep := false
	if *netDelay != "" {
		if delays, err = parseDurations(*netDelay); err != nil {
			log.Fatalf("-net-delay: %v", err)
		}
		for _, d := range delays {
			if d > 0 {
				rttSweep = true
			}
		}
	}

	header("Figure 3 (TCP): throughput (txn/s) vs node count, replication=2, real processes")
	// The RTT sweep is its own trajectory file: the loopback numbers stay the
	// regression baseline, the delayed numbers track the round-trip economy.
	name := "figure3_tcp"
	if rttSweep {
		name = "figure3_tcp_rtt"
	}
	rep := newReporter(name)
	for _, delay := range delays {
		if rttSweep {
			fmt.Printf("\n==== client-path RTT %v ====\n", delay)
		}
		for _, ro := range roPcts {
			fmt.Printf("\n-- %d%% read-only --\n", ro)
			fmt.Printf("%-14s", "series")
			for _, n := range nodeCounts {
				fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
			}
			fmt.Println()
			for _, keys := range keySizes {
				series := fmt.Sprintf("ro%d-sss-%dk-tcp", ro, keys/1000)
				if rttSweep {
					series = fmt.Sprintf("%s-rtt%s", series, delay)
				}
				if *durability == "wal" {
					series += "-wal"
				}
				fmt.Printf("%-14s", fmt.Sprintf("sss-%dk", keys/1000))
				for _, n := range nodeCounts {
					res := tcpPoint(rep, series, bin, n, 2, ycsb.Config{Keys: keys, ReadOnlyPct: ro}, *clients, delay)
					fmt.Printf("%12.0f", res.Throughput)
				}
				fmt.Println()
			}
		}
	}
	rep.flush()
}

// tcpPoint boots a fresh cluster, preloads the keyspace, runs one measured
// window through per-node clients, and tears everything down. A nonzero
// delay routes the clients through the harness's RTT shim.
func tcpPoint(rep *reporter, series, bin string, nodes, degree int, w ycsb.Config, clientsPerNode int, delay time.Duration) bench.Result {
	hc, err := harness.Start(harness.Config{
		Nodes: nodes, Replication: degree, BinPath: bin,
		ClientNetDelay: delay,
		Durable:        *durability == "wal",
	})
	if err != nil {
		log.Fatalf("tcp bench: start cluster: %v", err)
	}
	defer func() { _ = hc.Stop() }()

	conns := make([]*client.Client, nodes)
	for i, addr := range hc.ClientAddrs() {
		conns[i], err = client.Dial(addr, client.Options{
			Conns:            2,
			BatchMaxRequests: *batchMax,
			BatchFlushWindow: *batchWin,
		})
		if err != nil {
			log.Fatalf("tcp bench: dial node %d: %v", i, err)
		}
		defer func(c *client.Client) { _ = c.Close() }(conns[i])
	}
	if err := preloadTCP(conns[0], w.Keys); err != nil {
		log.Fatalf("tcp bench: preload: %v", err)
	}

	hn := make([]bench.Node, nodes)
	for i := range conns {
		hn[i] = &tcpNode{c: conns[i], stats: &metrics.Engine{}}
	}
	res := bench.Run(hn, bench.Options{
		Workload:       w,
		ClientsPerNode: clientsPerNode,
		Duration:       *duration,
		Warmup:         *warmup,
		Seed:           *seed,
		Lookup:         cluster.NewLookup(nodes, degree),
	})
	// The closed loop discards transaction errors, and on the TCP path
	// errors are realistic (node death, poisoned connections): a partially
	// failed run would record a silently deflated number. Refuse to emit
	// such a point.
	var errCount uint64
	for i := range hn {
		errCount += hn[i].(*tcpNode).errs.Load()
	}
	for i := 0; i < nodes; i++ {
		if !hc.Alive(i) {
			log.Fatalf("tcp bench: node %d died during the measurement:\n%s", i, hc.LogTail(i, 2048))
		}
	}
	if errCount > 0 {
		log.Fatalf("tcp bench: %d transaction errors during the point (cluster unhealthy; node 0 log tail):\n%s",
			errCount, hc.LogTail(0, 2048))
	}
	// Client-side network counters: one ClientNet per client, merged into the
	// point's aggregate (requests/flush and snapshot-read volume are the two
	// numbers that explain a TCP throughput delta).
	agg := &metrics.ClientNet{}
	for _, c := range conns {
		agg.Merge(c.Metrics())
	}
	clientNet := agg.Snapshot()
	if *netStats {
		fmt.Printf("    [client-net n=%d delay=%v] %s\n", nodes, delay, clientNet)
	}
	// Engine-side per-stage decomposition: the counters live in the server
	// processes, so scrape every node's /metrics endpoint (load is quiesced,
	// so stage counts have settled) and merge the pages cluster-wide.
	stages := scrapeStages(hc)
	if stages != nil && *netStats {
		fmt.Printf("    [stages n=%d] %s\n", nodes, *stages)
	}
	// In durable mode the WAL counters live in the server processes and are
	// only dumped on SIGTERM, so shut the cluster down (keeping its logs
	// readable — the deferred Stop still cleans up) and harvest the last
	// "durability:" line from each node's log.
	var durabilityLines []string
	if *durability == "wal" {
		if err := hc.Shutdown(); err != nil {
			log.Fatalf("tcp bench: shutdown: %v", err)
		}
		for i := 0; i < nodes; i++ {
			line := lastDurabilityLine(hc.LogTail(i, 8192))
			if line == "" {
				log.Fatalf("tcp bench: node %d logged no durability dump:\n%s", i, hc.LogTail(i, 2048))
			}
			durabilityLines = append(durabilityLines, line)
			if *netStats {
				fmt.Printf("    [durability n%d] %s\n", i, line)
			}
		}
	}
	if rep != nil {
		rep.points = append(rep.points, benchPoint{
			Series:            series,
			Engine:            "sss-tcp",
			Nodes:             nodes,
			ReplicationDegree: degree,
			ClientsPerNode:    clientsPerNode,
			Keys:              w.Keys,
			ReadOnlyPct:       w.ReadOnlyPct,
			NetDelay:          delay,
			ThroughputTxnS:    res.Throughput,
			AbortRate:         res.AbortRate,
			Commits:           res.Commits,
			ReadOnly:          res.ReadOnly,
			Aborts:            res.Aborts,
			UpdateLatency:     res.UpdateLatency,
			ReadOnlyLatency:   res.ReadOnlyLatency,
			ClientNet:         &clientNet,
			Durability:        durabilityLines,
			Stages:            stages,
		})
	}
	return res
}

// scrapeStages pulls the per-stage commit histograms off every node's live
// /metrics endpoint and merges them into one cluster-wide snapshot. Returns
// nil when scraping fails or no stage was ever observed (e.g. a pure-RO
// point) — the bench point then simply omits the breakdown.
func scrapeStages(hc *harness.Cluster) *metrics.StagesSnapshot {
	var pages []*obs.Page
	for i, addr := range hc.MetricsAddrs() {
		page, err := obs.Fetch(nil, addr)
		if err != nil {
			log.Printf("tcp bench: scrape node %d metrics: %v (stage breakdown omitted)", i, err)
			return nil
		}
		pages = append(pages, page)
	}
	merged := obs.MergePages(pages).Stages()
	return stagesOrNil(merged)
}

// lastDurabilityLine extracts the payload of the final "durability: " log
// line from a node's log tail (the server dumps its WAL/checkpoint counters
// once, on SIGTERM). The server logs structured key=value records, so the
// payload sits inside msg="durability: ..." — the closing quote (or the end
// of line, for unquoted legacy logs) terminates it.
func lastDurabilityLine(tail string) string {
	const marker = "durability: "
	idx := strings.LastIndex(tail, marker)
	if idx < 0 {
		return ""
	}
	line := tail[idx+len(marker):]
	if nl := strings.IndexByte(line, '\n'); nl >= 0 {
		line = line[:nl]
	}
	if q := strings.IndexByte(line, '"'); q >= 0 {
		line = line[:q]
	}
	return strings.TrimSpace(line)
}

// preloadTCP installs the initial keyspace through the client path, batching
// writes so a 10k keyspace costs ~50 commits instead of 10k.
func preloadTCP(c *client.Client, keys int) error {
	const batch = 200
	space := ycsb.Keyspace(keys)
	for start := 0; start < len(space); start += batch {
		end := start + batch
		if end > len(space) {
			end = len(space)
		}
		tx := c.Begin(false)
		for _, k := range space[start:end] {
			if err := tx.Write(k, []byte("init")); err != nil {
				_ = tx.Abort()
				return fmt.Errorf("write %s: %w", k, err)
			}
		}
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("commit batch at %d: %w", start, err)
		}
	}
	return nil
}

// tcpNode adapts a TCP client to the bench harness. Engine-internal
// histograms live in the server processes; the client side measures what a
// deployment sees — begin-to-commit-return latency — into its own
// histograms (commit/abort *counts* come from bench.Run's per-client
// outcome tally, not from these stats). errs counts non-abort transaction
// failures, which on this path mean the cluster is unhealthy.
type tcpNode struct {
	c     *client.Client
	stats *metrics.Engine
	errs  atomic.Uint64
}

func (n *tcpNode) Begin(readOnly bool) kv.Txn {
	start := time.Now() // before Begin's round trip: it's part of the latency
	return &timedTxn{Txn: n.c.Begin(readOnly), node: n, ro: readOnly, start: start}
}

// SnapshotRead implements kv.SnapshotReader: the bench's read-only
// transactions collapse into the one-round server-side form, timed like
// their interactive counterparts (call → all values returned).
func (n *tcpNode) SnapshotRead(keys []string) ([]kv.ReadResult, error) {
	start := time.Now()
	vals, err := n.c.SnapshotRead(keys)
	if err != nil {
		n.errs.Add(1)
		return nil, err
	}
	n.stats.ReadOnlyLatency.Observe(time.Since(start))
	return vals, nil
}

func (n *tcpNode) Stats() *metrics.Engine { return n.stats }

type timedTxn struct {
	kv.Txn
	node  *tcpNode
	ro    bool
	start time.Time
}

func (t *timedTxn) Read(key string) ([]byte, bool, error) {
	v, ok, err := t.Txn.Read(key)
	if err != nil {
		t.node.errs.Add(1)
	}
	return v, ok, err
}

// MultiRead forwards the concurrent-read-legs capability so the closed loop
// pipelines an update transaction's reads instead of paying one synchronous
// round trip per key.
func (t *timedTxn) MultiRead(keys []string) ([]kv.ReadResult, error) {
	mr, ok := t.Txn.(kv.MultiReader)
	if !ok { // not reachable with the TCP client, but keep semantics honest
		out := make([]kv.ReadResult, len(keys))
		for i, k := range keys {
			v, exists, err := t.Read(k)
			if err != nil {
				return nil, err
			}
			out[i] = kv.ReadResult{Val: v, Exists: exists}
		}
		return out, nil
	}
	res, err := mr.MultiRead(keys)
	if err != nil {
		t.node.errs.Add(1)
	}
	return res, err
}

func (t *timedTxn) Write(key string, val []byte) error {
	err := t.Txn.Write(key, val)
	if err != nil {
		t.node.errs.Add(1)
	}
	return err
}

func (t *timedTxn) Commit() error {
	err := t.Txn.Commit()
	d := time.Since(t.start)
	switch {
	case err == nil && t.ro:
		t.node.stats.ReadOnlyLatency.Observe(d)
	case err == nil:
		t.node.stats.CommitLatency.Observe(d)
	case !errors.Is(err, kv.ErrAborted):
		t.node.errs.Add(1)
	}
	return err
}
