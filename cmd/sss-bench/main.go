// Command sss-bench regenerates the paper's evaluation figures (§V) on the
// simulated cluster and prints one table per figure. By default it runs a
// quick pass (short measurement windows, laptop-scaled node counts); use
// -duration and -nodes for smoother curves.
//
//	sss-bench -figure 3            # Figure 3: throughput vs nodes
//	sss-bench -figure all -duration 2s
//
// With -transport tcp, the figure-3 sweep instead drives a real
// multi-process deployment: internal/harness boots one sss-server process
// per node on loopback TCP and closed-loop clients issue transactions
// through the public client package — the paper's networked system shape,
// not the in-process simulation. TCP mode supports figure 3 only (the
// competitor engines have no server binary) and writes
// BENCH_figure3_tcp.json with -json.
//
// With -json, every figure additionally writes a machine-readable
// BENCH_figure<N>.json snapshot (throughput, latency percentiles, transport
// batching and lock-contention metrics per data point) for perf-trajectory
// tracking across commits. The -cpuprofile/-mutexprofile/-blockprofile
// flags capture pprof profiles of the whole run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/sss-paper/sss"
	"github.com/sss-paper/sss/internal/bench"
	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/metrics"
	"github.com/sss-paper/sss/internal/profiling"
	"github.com/sss-paper/sss/internal/ycsb"
)

var (
	figure   = flag.String("figure", "all", "figure to regenerate: 3, 4, 5, 6, 7, 8 or all")
	duration = flag.Duration("duration", 400*time.Millisecond, "measurement window per data point")
	warmup   = flag.Duration("warmup", 100*time.Millisecond, "warmup per data point")
	nodesCSV = flag.String("nodes", "2,4,6", "node counts to sweep (paper: 5,10,15,20)")
	clients  = flag.Int("clients", 10, "closed-loop clients per node (paper: 10)")
	seed     = flag.Int64("seed", 1, "workload seed")
	batchMax = flag.Int("batch-max", 0, "max envelopes per transport batch (0 = default 64)")
	batchWin = flag.Duration("batch-window", 0, "sender flush window (0 = flush immediately)")
	workers  = flag.Int("inbound-workers", 0, "inbound dispatch pool size per node (0 = default)")
	netStats = flag.Bool("net-stats", false, "print per-point transport batching stats")
	jsonOut  = flag.Bool("json", false, "write BENCH_figure<N>.json snapshots per figure")

	transportKind = flag.String("transport", "inproc", "inproc (simulated network) | tcp (real multi-process cluster, figure 3 only)")
	serverBin     = flag.String("server-bin", "", "sss-server binary for -transport tcp (empty = build once via go build)")
	tcpKeys       = flag.String("tcp-keys", "5000,10000", "keyspace sizes for the tcp figure-3 sweep")
	tcpRO         = flag.String("tcp-ro", "20,50,80", "read-only percentages for the tcp figure-3 sweep")
	netDelay      = flag.String("net-delay", "", "client-path RTTs to sweep in tcp mode, CSV of durations (e.g. 0,500us,2ms); any nonzero value switches the snapshot to BENCH_figure3_tcp_rtt.json")
	durability    = flag.String("durability", "off", "tcp mode: off (in-memory servers) | wal (per-node data dirs, group-committed WAL); wal appends -wal to series names")

	cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	blockProfile = flag.String("blockprofile", "", "write a blocking profile to this file")
)

func main() {
	flag.Parse()
	nodeCounts, err := parseInts(*nodesCSV)
	if err != nil {
		log.Fatalf("-nodes: %v", err)
	}
	stopProf, err := profiling.Start(profiling.Config{
		CPU: *cpuProfile, Mutex: *mutexProfile, Block: *blockProfile,
	})
	if err != nil {
		log.Fatal(err)
	}
	run := func(f string) bool { return *figure == "all" || *figure == f }
	if *durability != "off" && *durability != "wal" {
		log.Fatalf("-durability must be off or wal, got %q", *durability)
	}
	if *durability == "wal" && *transportKind != "tcp" {
		log.Fatalf("-durability wal requires -transport tcp (the WAL lives in the server processes)")
	}
	if *transportKind == "tcp" {
		if !run("3") {
			log.Fatalf("-transport tcp supports figure 3 only (got -figure %s)", *figure)
		}
		figure3TCP(nodeCounts)
		if err := stopProf(); err != nil {
			log.Fatalf("profiling: %v", err)
		}
		return
	}
	if *transportKind != "inproc" {
		log.Fatalf("-transport must be inproc or tcp, got %q", *transportKind)
	}
	if run("3") {
		figure3(nodeCounts)
	}
	if run("4") {
		figure4(nodeCounts)
	}
	if run("5") {
		figure5()
	}
	if run("6") {
		figure6(nodeCounts)
	}
	if run("7") {
		figure7(nodeCounts)
	}
	if run("8") {
		figure8()
	}
	if err := stopProf(); err != nil {
		log.Fatalf("profiling: %v", err)
	}
}

// parseDurations parses a CSV of time.Duration values; bare "0" is allowed.
func parseDurations(csv string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "0" {
			out = append(out, 0)
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, err
		}
		if d < 0 {
			return nil, fmt.Errorf("negative delay %v", d)
		}
		out = append(out, d)
	}
	return out, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// benchPoint is one measurement in the machine-readable snapshot.
type benchPoint struct {
	Series            string                       `json:"series"`
	Engine            string                       `json:"engine"`
	Nodes             int                          `json:"nodes"`
	ReplicationDegree int                          `json:"replication_degree"`
	ClientsPerNode    int                          `json:"clients_per_node"`
	Keys              int                          `json:"keys"`
	ReadOnlyPct       int                          `json:"read_only_pct"`
	ReadOnlyOps       int                          `json:"read_only_ops,omitempty"`
	Locality          float64                      `json:"locality,omitempty"`
	NetDelay          time.Duration                `json:"net_delay_ns,omitempty"`
	ThroughputTxnS    float64                      `json:"throughput_txn_s"`
	AbortRate         float64                      `json:"abort_rate"`
	Commits           uint64                       `json:"commits"`
	ReadOnly          uint64                       `json:"read_only"`
	Aborts            uint64                       `json:"aborts"`
	UpdateLatency     metrics.HistogramSnapshot    `json:"update_latency"`
	ReadOnlyLatency   metrics.HistogramSnapshot    `json:"read_only_latency"`
	InternalLatency   metrics.HistogramSnapshot    `json:"internal_latency"`
	PreCommitWait     metrics.HistogramSnapshot    `json:"pre_commit_wait"`
	ExternalWaits     uint64                       `json:"external_waits"`
	DrainTimeouts     uint64                       `json:"drain_timeouts"`
	Transport         metrics.TransportSnapshot    `json:"transport"`
	Contention        metrics.ContentionSnapshot   `json:"contention"`
	CommitRounds      metrics.CommitRoundsSnapshot `json:"commit_rounds"`
	// EngineCounters is the aggregated scalar engine-counter dump; nil in
	// tcp mode, where the counters live in the server processes and surface
	// through their SIGTERM "engine:" log line instead.
	EngineCounters *metrics.EngineCountersSnapshot `json:"engine_counters,omitempty"`
	ClientNet      *metrics.ClientNetSnapshot      `json:"client_net,omitempty"`
	Durability     []string                        `json:"durability,omitempty"`
	// Stages is the per-stage commit decomposition (vote, decide/drain,
	// freeze, purge, WAL sync, client ack). In-proc it comes from the
	// engines directly; in tcp mode it is harvested by scraping the nodes'
	// /metrics endpoints before shutdown. Nil for engines that don't
	// instrument stages.
	Stages *metrics.StagesSnapshot `json:"stages,omitempty"`
}

// benchReport is the BENCH_<name>.json document: one figure's points plus
// the run configuration that produced them.
type benchReport struct {
	Name        string        `json:"name"`
	GeneratedAt time.Time     `json:"generated_at"`
	Duration    time.Duration `json:"duration_ns"`
	Warmup      time.Duration `json:"warmup_ns"`
	Seed        int64         `json:"seed"`
	Points      []benchPoint  `json:"points"`
}

// reporter accumulates one figure's points and writes the snapshot file.
type reporter struct {
	name   string
	points []benchPoint
}

func newReporter(name string) *reporter { return &reporter{name: name} }

func (r *reporter) flush() {
	if !*jsonOut {
		return
	}
	doc := benchReport{
		Name:        r.name,
		GeneratedAt: time.Now().UTC(),
		Duration:    *duration,
		Warmup:      *warmup,
		Seed:        *seed,
		Points:      r.points,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("json: %v", err)
	}
	path := fmt.Sprintf("BENCH_%s.json", r.name)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("  [wrote %s: %d points]\n", path, len(r.points))
}

// point runs one measurement and returns the result, recording it in rep.
func point(rep *reporter, series string, eng sss.Engine, nodes, degree int, w ycsb.Config, clientsPerNode int) bench.Result {
	c, err := sss.New(sss.Options{
		Nodes: nodes, ReplicationDegree: degree, Engine: eng,
		BatchMaxEnvelopes: *batchMax,
		BatchFlushWindow:  *batchWin,
		TransportWorkers:  *workers,
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer func() { _ = c.Close() }()
	for _, k := range ycsb.Keyspace(w.Keys) {
		c.Preload(k, []byte("init"))
	}
	var hn []bench.Node
	for i := 0; i < c.NumNodes(); i++ {
		hn = append(hn, sss.HarnessNode(c.Node(i)))
	}
	res := bench.Run(hn, bench.Options{
		Workload:       w,
		ClientsPerNode: clientsPerNode,
		Duration:       *duration,
		Warmup:         *warmup,
		Seed:           *seed,
		Lookup:         cluster.NewLookup(nodes, degree),
	})
	net := c.TransportMetrics().Snapshot()
	if *netStats {
		fmt.Printf("    [net %s n=%d] %s | %s | %s\n", eng, nodes, net, res.Contention, res.CommitRounds)
	}
	if rep != nil {
		rep.points = append(rep.points, benchPoint{
			Series:            series,
			Engine:            string(eng),
			Nodes:             nodes,
			ReplicationDegree: degree,
			ClientsPerNode:    clientsPerNode,
			Keys:              w.Keys,
			ReadOnlyPct:       w.ReadOnlyPct,
			ReadOnlyOps:       w.ReadOnlyOps,
			Locality:          w.Locality,
			ThroughputTxnS:    res.Throughput,
			AbortRate:         res.AbortRate,
			Commits:           res.Commits,
			ReadOnly:          res.ReadOnly,
			Aborts:            res.Aborts,
			UpdateLatency:     res.UpdateLatency,
			ReadOnlyLatency:   res.ReadOnlyLatency,
			InternalLatency:   res.InternalLatency,
			PreCommitWait:     res.PreCommitWait,
			ExternalWaits:     res.ExternalWaits,
			DrainTimeouts:     res.DrainTimeouts,
			Transport:         net,
			Contention:        res.Contention,
			CommitRounds:      res.CommitRounds,
			EngineCounters:    &res.EngineCounters,
			Stages:            stagesOrNil(res.Stages),
		})
	}
	return res
}

// stagesOrNil drops an all-zero stage snapshot from the JSON (engines that
// don't instrument stages, or pure-RO points with no update commits).
func stagesOrNil(s metrics.StagesSnapshot) *metrics.StagesSnapshot {
	if s.Vote.Count == 0 && s.Decide.Count == 0 && s.Freeze.Count == 0 &&
		s.Purge.Count == 0 && s.WalSync.Count == 0 && s.ClientAck.Count == 0 {
		return nil
	}
	return &s
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func figure3(nodeCounts []int) {
	header("Figure 3: throughput (txn/s) vs node count, replication=2")
	rep := newReporter("figure3")
	for _, ro := range []int{20, 50, 80} {
		fmt.Printf("\n-- %d%% read-only --\n", ro)
		fmt.Printf("%-14s", "series")
		for _, n := range nodeCounts {
			fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
		}
		fmt.Println()
		for _, keys := range []int{5000, 10000} {
			for _, eng := range []sss.Engine{sss.Engine2PC, sss.EngineWalter, sss.EngineSSS} {
				series := fmt.Sprintf("ro%d-%s-%dk", ro, eng, keys/1000)
				fmt.Printf("%-14s", fmt.Sprintf("%s-%dk", eng, keys/1000))
				for _, n := range nodeCounts {
					res := point(rep, series, eng, n, 2, ycsb.Config{Keys: keys, ReadOnlyPct: ro}, *clients)
					fmt.Printf("%12.0f", res.Throughput)
				}
				fmt.Println()
			}
		}
	}
	rep.flush()
}

func figure4(nodeCounts []int) {
	header("Figure 4(a): maximum attainable throughput, 50% ro, 5k keys")
	rep := newReporter("figure4")
	fmt.Printf("%-8s", "series")
	for _, n := range nodeCounts {
		fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	for _, eng := range []sss.Engine{sss.EngineSSS, sss.Engine2PC} {
		fmt.Printf("%-8s", eng)
		for _, n := range nodeCounts {
			best := 0.0
			for _, cpn := range []int{10, 20, 40} {
				series := fmt.Sprintf("max-tp-%s-c%d", eng, cpn)
				if tp := point(rep, series, eng, n, 2, ycsb.Config{Keys: 5000, ReadOnlyPct: 50}, cpn).Throughput; tp > best {
					best = tp
				}
			}
			fmt.Printf("%12.0f", best)
		}
		fmt.Println()
	}

	header("Figure 4(b): external-commit latency (µs) vs clients/node")
	fmt.Printf("%-8s%12s%12s%12s%12s\n", "series", "1", "3", "5", "10")
	for _, eng := range []sss.Engine{sss.EngineSSS, sss.Engine2PC} {
		fmt.Printf("%-8s", eng)
		for _, cpn := range []int{1, 3, 5, 10} {
			series := fmt.Sprintf("latency-%s", eng)
			res := point(rep, series, eng, 4, 2, ycsb.Config{Keys: 5000, ReadOnlyPct: 50}, cpn)
			fmt.Printf("%12d", res.UpdateLatency.Mean.Microseconds())
		}
		fmt.Println()
	}
	rep.flush()
}

func figure5() {
	header("Figure 5: SSS latency breakdown (µs): internal commit vs pre-commit wait")
	rep := newReporter("figure5")
	fmt.Printf("%-10s%14s%14s%8s\n", "clients", "internal", "pre-commit", "wait%")
	for _, cpn := range []int{1, 3, 5, 10} {
		res := point(rep, "breakdown", sss.EngineSSS, 4, 2, ycsb.Config{Keys: 5000, ReadOnlyPct: 50}, cpn)
		in := res.InternalLatency.Mean.Microseconds()
		wa := res.PreCommitWait.Mean.Microseconds()
		pct := 0.0
		if in+wa > 0 {
			pct = 100 * float64(wa) / float64(in+wa)
		}
		fmt.Printf("%-10d%14d%14d%7.1f%%\n", cpn, in, wa, pct)
	}
	rep.flush()
}

func figure6(nodeCounts []int) {
	header("Figure 6: SSS vs ROCOCO vs 2PC (no replication, 5k keys), txn/s")
	rep := newReporter("figure6")
	for _, ro := range []int{20, 80} {
		fmt.Printf("\n-- %d%% read-only --\n", ro)
		fmt.Printf("%-8s", "series")
		for _, n := range nodeCounts {
			fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
		}
		fmt.Println()
		for _, eng := range []sss.Engine{sss.EngineSSS, sss.Engine2PC, sss.EngineROCOCO} {
			fmt.Printf("%-8s", eng)
			for _, n := range nodeCounts {
				series := fmt.Sprintf("ro%d-%s", ro, eng)
				res := point(rep, series, eng, n, 1, ycsb.Config{Keys: 5000, ReadOnlyPct: ro}, *clients)
				fmt.Printf("%12.0f", res.Throughput)
			}
			fmt.Println()
		}
	}
	rep.flush()
}

func figure7(nodeCounts []int) {
	header("Figure 7: 80% read-only, 50% locality, replication=2, txn/s")
	rep := newReporter("figure7")
	fmt.Printf("%-14s", "series")
	for _, n := range nodeCounts {
		fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	for _, keys := range []int{5000, 10000} {
		for _, eng := range []sss.Engine{sss.Engine2PC, sss.EngineWalter, sss.EngineSSS} {
			series := fmt.Sprintf("local-%s-%dk", eng, keys/1000)
			fmt.Printf("%-14s", fmt.Sprintf("%s-%dk", eng, keys/1000))
			for _, n := range nodeCounts {
				w := ycsb.Config{Keys: keys, ReadOnlyPct: 80, Distribution: ycsb.Local, Locality: 0.5}
				res := point(rep, series, eng, n, 2, w, *clients)
				fmt.Printf("%12.0f", res.Throughput)
			}
			fmt.Println()
		}
	}
	rep.flush()
}

func figure8() {
	header("Figure 8: SSS speedup vs read-only size (80% ro, no replication)")
	rep := newReporter("figure8")
	fmt.Printf("%-10s%16s%16s\n", "ro keys", "SSS/ROCOCO", "SSS/2PC")
	for _, ops := range []int{2, 4, 8, 16} {
		w := ycsb.Config{Keys: 5000, ReadOnlyPct: 80, ReadOnlyOps: ops}
		tpSSS := point(rep, "ro-size-sss", sss.EngineSSS, 3, 1, w, *clients).Throughput
		tpRoc := point(rep, "ro-size-rococo", sss.EngineROCOCO, 3, 1, w, *clients).Throughput
		tp2PC := point(rep, "ro-size-2pc", sss.Engine2PC, 3, 1, w, *clients).Throughput
		row := func(num, den float64) string {
			if den <= 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.2fx", num/den)
		}
		fmt.Printf("%-10d%16s%16s\n", ops, row(tpSSS, tpRoc), row(tpSSS, tp2PC))
	}
	rep.flush()
	_ = os.Stdout.Sync()
}
