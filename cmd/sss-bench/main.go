// Command sss-bench regenerates the paper's evaluation figures (§V) on the
// simulated cluster and prints one table per figure. By default it runs a
// quick pass (short measurement windows, laptop-scaled node counts); use
// -duration and -nodes for smoother curves.
//
//	sss-bench -figure 3            # Figure 3: throughput vs nodes
//	sss-bench -figure all -duration 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/sss-paper/sss"
	"github.com/sss-paper/sss/internal/bench"
	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/ycsb"
)

var (
	figure   = flag.String("figure", "all", "figure to regenerate: 3, 4, 5, 6, 7, 8 or all")
	duration = flag.Duration("duration", 400*time.Millisecond, "measurement window per data point")
	warmup   = flag.Duration("warmup", 100*time.Millisecond, "warmup per data point")
	nodesCSV = flag.String("nodes", "2,4,6", "node counts to sweep (paper: 5,10,15,20)")
	clients  = flag.Int("clients", 10, "closed-loop clients per node (paper: 10)")
	seed     = flag.Int64("seed", 1, "workload seed")
	batchMax = flag.Int("batch-max", 0, "max envelopes per transport batch (0 = default 64)")
	batchWin = flag.Duration("batch-window", 0, "sender flush window (0 = flush immediately)")
	workers  = flag.Int("inbound-workers", 0, "inbound dispatch pool size per node (0 = default)")
	netStats = flag.Bool("net-stats", false, "print per-point transport batching stats")
)

func main() {
	flag.Parse()
	nodeCounts, err := parseInts(*nodesCSV)
	if err != nil {
		log.Fatalf("-nodes: %v", err)
	}
	run := func(f string) bool { return *figure == "all" || *figure == f }
	if run("3") {
		figure3(nodeCounts)
	}
	if run("4") {
		figure4(nodeCounts)
	}
	if run("5") {
		figure5()
	}
	if run("6") {
		figure6(nodeCounts)
	}
	if run("7") {
		figure7(nodeCounts)
	}
	if run("8") {
		figure8()
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// point runs one measurement and returns the result.
func point(eng sss.Engine, nodes, degree int, w ycsb.Config, clientsPerNode int) bench.Result {
	c, err := sss.New(sss.Options{
		Nodes: nodes, ReplicationDegree: degree, Engine: eng,
		BatchMaxEnvelopes: *batchMax,
		BatchFlushWindow:  *batchWin,
		TransportWorkers:  *workers,
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer func() { _ = c.Close() }()
	for _, k := range ycsb.Keyspace(w.Keys) {
		c.Preload(k, []byte("init"))
	}
	var hn []bench.Node
	for i := 0; i < c.NumNodes(); i++ {
		hn = append(hn, sss.HarnessNode(c.Node(i)))
	}
	res := bench.Run(hn, bench.Options{
		Workload:       w,
		ClientsPerNode: clientsPerNode,
		Duration:       *duration,
		Warmup:         *warmup,
		Seed:           *seed,
		Lookup:         cluster.NewLookup(nodes, degree),
	})
	if *netStats {
		fmt.Printf("    [net %s n=%d] %s\n", eng, nodes, c.TransportMetrics().Snapshot())
	}
	return res
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func figure3(nodeCounts []int) {
	header("Figure 3: throughput (txn/s) vs node count, replication=2")
	for _, ro := range []int{20, 50, 80} {
		fmt.Printf("\n-- %d%% read-only --\n", ro)
		fmt.Printf("%-14s", "series")
		for _, n := range nodeCounts {
			fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
		}
		fmt.Println()
		for _, keys := range []int{5000, 10000} {
			for _, eng := range []sss.Engine{sss.Engine2PC, sss.EngineWalter, sss.EngineSSS} {
				fmt.Printf("%-14s", fmt.Sprintf("%s-%dk", eng, keys/1000))
				for _, n := range nodeCounts {
					res := point(eng, n, 2, ycsb.Config{Keys: keys, ReadOnlyPct: ro}, *clients)
					fmt.Printf("%12.0f", res.Throughput)
				}
				fmt.Println()
			}
		}
	}
}

func figure4(nodeCounts []int) {
	header("Figure 4(a): maximum attainable throughput, 50% ro, 5k keys")
	fmt.Printf("%-8s", "series")
	for _, n := range nodeCounts {
		fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	for _, eng := range []sss.Engine{sss.EngineSSS, sss.Engine2PC} {
		fmt.Printf("%-8s", eng)
		for _, n := range nodeCounts {
			best := 0.0
			for _, cpn := range []int{10, 20, 40} {
				if tp := point(eng, n, 2, ycsb.Config{Keys: 5000, ReadOnlyPct: 50}, cpn).Throughput; tp > best {
					best = tp
				}
			}
			fmt.Printf("%12.0f", best)
		}
		fmt.Println()
	}

	header("Figure 4(b): external-commit latency (µs) vs clients/node")
	fmt.Printf("%-8s%12s%12s%12s%12s\n", "series", "1", "3", "5", "10")
	for _, eng := range []sss.Engine{sss.EngineSSS, sss.Engine2PC} {
		fmt.Printf("%-8s", eng)
		for _, cpn := range []int{1, 3, 5, 10} {
			res := point(eng, 4, 2, ycsb.Config{Keys: 5000, ReadOnlyPct: 50}, cpn)
			fmt.Printf("%12d", res.UpdateLatency.Mean.Microseconds())
		}
		fmt.Println()
	}
}

func figure5() {
	header("Figure 5: SSS latency breakdown (µs): internal commit vs pre-commit wait")
	fmt.Printf("%-10s%14s%14s%8s\n", "clients", "internal", "pre-commit", "wait%")
	for _, cpn := range []int{1, 3, 5, 10} {
		res := point(sss.EngineSSS, 4, 2, ycsb.Config{Keys: 5000, ReadOnlyPct: 50}, cpn)
		in := res.InternalLatency.Mean.Microseconds()
		wa := res.PreCommitWait.Mean.Microseconds()
		pct := 0.0
		if in+wa > 0 {
			pct = 100 * float64(wa) / float64(in+wa)
		}
		fmt.Printf("%-10d%14d%14d%7.1f%%\n", cpn, in, wa, pct)
	}
}

func figure6(nodeCounts []int) {
	header("Figure 6: SSS vs ROCOCO vs 2PC (no replication, 5k keys), txn/s")
	for _, ro := range []int{20, 80} {
		fmt.Printf("\n-- %d%% read-only --\n", ro)
		fmt.Printf("%-8s", "series")
		for _, n := range nodeCounts {
			fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
		}
		fmt.Println()
		for _, eng := range []sss.Engine{sss.EngineSSS, sss.Engine2PC, sss.EngineROCOCO} {
			fmt.Printf("%-8s", eng)
			for _, n := range nodeCounts {
				res := point(eng, n, 1, ycsb.Config{Keys: 5000, ReadOnlyPct: ro}, *clients)
				fmt.Printf("%12.0f", res.Throughput)
			}
			fmt.Println()
		}
	}
}

func figure7(nodeCounts []int) {
	header("Figure 7: 80% read-only, 50% locality, replication=2, txn/s")
	fmt.Printf("%-14s", "series")
	for _, n := range nodeCounts {
		fmt.Printf("%12s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	for _, keys := range []int{5000, 10000} {
		for _, eng := range []sss.Engine{sss.Engine2PC, sss.EngineWalter, sss.EngineSSS} {
			fmt.Printf("%-14s", fmt.Sprintf("%s-%dk", eng, keys/1000))
			for _, n := range nodeCounts {
				w := ycsb.Config{Keys: keys, ReadOnlyPct: 80, Distribution: ycsb.Local, Locality: 0.5}
				res := point(eng, n, 2, w, *clients)
				fmt.Printf("%12.0f", res.Throughput)
			}
			fmt.Println()
		}
	}
}

func figure8() {
	header("Figure 8: SSS speedup vs read-only size (80% ro, no replication)")
	fmt.Printf("%-10s%16s%16s\n", "ro keys", "SSS/ROCOCO", "SSS/2PC")
	for _, ops := range []int{2, 4, 8, 16} {
		w := ycsb.Config{Keys: 5000, ReadOnlyPct: 80, ReadOnlyOps: ops}
		tpSSS := point(sss.EngineSSS, 3, 1, w, *clients).Throughput
		tpRoc := point(sss.EngineROCOCO, 3, 1, w, *clients).Throughput
		tp2PC := point(sss.Engine2PC, 3, 1, w, *clients).Throughput
		row := func(num, den float64) string {
			if den <= 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.2fx", num/den)
		}
		fmt.Printf("%-10d%16s%16s\n", ops, row(tpSSS, tpRoc), row(tpSSS, tp2PC))
	}
	_ = os.Stdout.Sync()
}
