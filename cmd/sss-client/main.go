// Command sss-client is a small one-shot client for sss-server, built on
// the client package (the same tested codepath external programs use).
//
//	sss-client -addr 127.0.0.1:8000 set greeting hello
//	sss-client -addr 127.0.0.1:8000 get greeting
//	sss-client -addr 127.0.0.1:8000 snapshot k1 k2 k3   # one read-only txn
//	sss-client -addr 127.0.0.1:8000 ping
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/sss-paper/sss/client"
)

var addr = flag.String("addr", "127.0.0.1:8000", "sss-server client address")

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: sss-client [-addr host:port] get <key> | set <key> <value> | snapshot <key>... | ping")
	}
	c, err := client.Dial(*addr, client.Options{Conns: 1})
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer func() { _ = c.Close() }()

	switch args[0] {
	case "ping":
		if err := c.Ping(); err != nil {
			log.Fatalf("ping: %v", err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get <key>")
		}
		tx := c.Begin(true)
		val, exists, err := tx.Read(args[1])
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("commit: %v", err)
		}
		if !exists {
			fmt.Println("(nil)")
			return
		}
		fmt.Println(string(val))
	case "set":
		if len(args) != 3 {
			log.Fatal("usage: set <key> <value>")
		}
		tx := c.Begin(false)
		if _, _, err := tx.Read(args[1]); err != nil { // establish the snapshot
			log.Fatalf("read: %v", err)
		}
		if err := tx.Write(args[1], []byte(args[2])); err != nil {
			log.Fatalf("write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("commit: %v", err)
		}
		fmt.Println("OK")
	case "snapshot":
		if len(args) < 2 {
			log.Fatal("usage: snapshot <key>...")
		}
		// One round trip: the whole read-only transaction runs server-side.
		res, err := c.SnapshotRead(args[1:])
		if err != nil {
			log.Fatalf("snapshot read: %v", err)
		}
		for i, k := range args[1:] {
			if res[i].Exists {
				fmt.Printf("%s = %s\n", k, res[i].Val)
			} else {
				fmt.Printf("%s = (nil)\n", k)
			}
		}
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}
