// Command sss-client is a tiny interactive/one-shot client for sss-server's
// line protocol.
//
//	sss-client -addr 127.0.0.1:8000 set greeting hello
//	sss-client -addr 127.0.0.1:8000 get greeting
//	sss-client -addr 127.0.0.1:8000 snapshot k1 k2 k3   # one read-only txn
package main

import (
	"bufio"
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
)

var addr = flag.String("addr", "127.0.0.1:8000", "sss-server client address")

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: sss-client [-addr host:port] get <key> | set <key> <value> | snapshot <key>...")
	}
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer func() { _ = conn.Close() }()
	c := &client{r: bufio.NewScanner(conn), w: bufio.NewWriter(conn)}

	switch args[0] {
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get <key>")
		}
		txn := c.begin(true)
		val, exists := c.read(txn, args[1])
		c.commitOK(txn)
		if !exists {
			fmt.Println("(nil)")
			return
		}
		fmt.Println(string(val))
	case "set":
		if len(args) != 3 {
			log.Fatal("usage: set <key> <value>")
		}
		txn := c.begin(false)
		c.must(c.send("READ %s %s", txn, args[1])) // establish the snapshot
		c.must(c.send("WRITE %s %s %s", txn, args[1],
			base64.StdEncoding.EncodeToString([]byte(args[2]))))
		resp := c.send("COMMIT %s", txn)
		fmt.Println(resp)
	case "snapshot":
		if len(args) < 2 {
			log.Fatal("usage: snapshot <key>...")
		}
		txn := c.begin(true)
		for _, k := range args[1:] {
			val, exists := c.read(txn, k)
			if exists {
				fmt.Printf("%s = %s\n", k, val)
			} else {
				fmt.Printf("%s = (nil)\n", k)
			}
		}
		c.commitOK(txn)
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

type client struct {
	r *bufio.Scanner
	w *bufio.Writer
}

func (c *client) send(format string, args ...any) string {
	fmt.Fprintf(c.w, format+"\n", args...)
	if err := c.w.Flush(); err != nil {
		log.Fatalf("send: %v", err)
	}
	if !c.r.Scan() {
		log.Fatal("server closed connection")
	}
	return c.r.Text()
}

func (c *client) must(resp string) {
	if strings.HasPrefix(resp, "ERR") {
		log.Fatalf("server: %s", resp)
	}
}

func (c *client) begin(readOnly bool) string {
	mode := "rw"
	if readOnly {
		mode = "ro"
	}
	resp := c.send("BEGIN %s", mode)
	fields := strings.Fields(resp)
	if len(fields) != 2 || fields[0] != "OK" {
		log.Fatalf("begin: %s", resp)
	}
	return fields[1]
}

func (c *client) read(txn, key string) ([]byte, bool) {
	resp := c.send("READ %s %s", txn, key)
	switch {
	case resp == "NIL":
		return nil, false
	case strings.HasPrefix(resp, "VAL "):
		val, err := base64.StdEncoding.DecodeString(resp[4:])
		if err != nil {
			log.Fatalf("bad value from server: %v", err)
		}
		return val, true
	default:
		log.Fatalf("read: %s", resp)
		return nil, false
	}
}

func (c *client) commitOK(txn string) {
	if resp := c.send("COMMIT %s", txn); resp != "OK" {
		log.Fatalf("commit: %s", resp)
	}
}
