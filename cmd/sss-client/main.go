// Command sss-client is a small one-shot client for sss-server, built on
// the client package (the same tested codepath external programs use).
//
//	sss-client -addr 127.0.0.1:8000 set greeting hello
//	sss-client -addr 127.0.0.1:8000 get greeting
//	sss-client -addr 127.0.0.1:8000 snapshot k1 k2 k3   # one read-only txn
//	sss-client -addr 127.0.0.1:8000 ping
//
// The top subcommand is a live cluster view over the servers' /metrics
// endpoints (started with -metrics-addr): cluster throughput, abort rate,
// the per-stage commit-path breakdown and peer-link health, refreshed every
// interval. It talks HTTP only — no client-protocol connection — so it can
// watch a cluster it has no write access to.
//
//	sss-client top 127.0.0.1:9000 127.0.0.1:9001 127.0.0.1:9002
//	sss-client top -interval 5s -count 3 127.0.0.1:9000
//	sss-client top -once 127.0.0.1:9000    # one frame of cumulative totals
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/sss-paper/sss/client"
	"github.com/sss-paper/sss/internal/obs"
)

var addr = flag.String("addr", "127.0.0.1:8000", "sss-server client address")

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: sss-client [-addr host:port] get <key> | set <key> <value> | snapshot <key>... | ping | top <metrics-addr>...")
	}
	if args[0] == "top" {
		runTop(args[1:])
		return
	}
	c, err := client.Dial(*addr, client.Options{Conns: 1})
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer func() { _ = c.Close() }()

	switch args[0] {
	case "ping":
		if err := c.Ping(); err != nil {
			log.Fatalf("ping: %v", err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get <key>")
		}
		tx := c.Begin(true)
		val, exists, err := tx.Read(args[1])
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("commit: %v", err)
		}
		if !exists {
			fmt.Println("(nil)")
			return
		}
		fmt.Println(string(val))
	case "set":
		if len(args) != 3 {
			log.Fatal("usage: set <key> <value>")
		}
		tx := c.Begin(false)
		if _, _, err := tx.Read(args[1]); err != nil { // establish the snapshot
			log.Fatalf("read: %v", err)
		}
		if err := tx.Write(args[1], []byte(args[2])); err != nil {
			log.Fatalf("write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("commit: %v", err)
		}
		fmt.Println("OK")
	case "snapshot":
		if len(args) < 2 {
			log.Fatal("usage: snapshot <key>...")
		}
		// One round trip: the whole read-only transaction runs server-side.
		res, err := c.SnapshotRead(args[1:])
		if err != nil {
			log.Fatalf("snapshot read: %v", err)
		}
		for i, k := range args[1:] {
			if res[i].Exists {
				fmt.Printf("%s = %s\n", k, res[i].Val)
			} else {
				fmt.Printf("%s = (nil)\n", k)
			}
		}
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

// requiredSeries is the minimum exposition contract top (and the e2e smoke
// lane via `top -once`) holds every node to: the commit counter, the full
// stage taxonomy and the WAL health counter. A node missing any of these is
// reported and makes top exit nonzero in -once mode.
var requiredSeries = []string{
	"sss_commits_total",
	"sss_stage_vote_seconds",
	"sss_stage_decide_seconds",
	"sss_stage_freeze_seconds",
	"sss_stage_purge_seconds",
	"sss_stage_wal_sync_seconds",
	"sss_stage_client_ack_seconds",
	"sss_wal_sync_failures_total",
}

// runTop implements the live-cluster view. Plain frames are printed (one
// per interval), not a cursor-addressed TUI, so the output pipes cleanly
// into files and CI logs.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval between frames")
	count := fs.Int("count", 0, "number of frames to print before exiting (0 = until interrupted)")
	once := fs.Bool("once", false, "scrape once, print cumulative totals, and exit; nonzero if any node is unreachable or missing a required series")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sss-client top [-interval d] [-count n] [-once] <metrics-addr>...")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	addrs := fs.Args()
	if len(addrs) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	httpc := &http.Client{Timeout: 5 * time.Second}

	if *once {
		pages, ok := scrapeAll(httpc, addrs)
		printFrame(addrs, pages, nil, 0)
		if !ok || !checkRequired(addrs, pages) {
			os.Exit(1)
		}
		return
	}

	var prev []*obs.Page
	last := time.Now()
	for frame := 0; *count == 0 || frame < *count; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		now := time.Now()
		pages, _ := scrapeAll(httpc, addrs)
		printFrame(addrs, pages, prev, now.Sub(last))
		prev, last = pages, now
	}
}

// scrapeAll fetches every node's page; unreachable nodes get a nil entry
// and ok=false so a frame can still render a partial cluster.
func scrapeAll(httpc *http.Client, addrs []string) ([]*obs.Page, bool) {
	pages := make([]*obs.Page, len(addrs))
	ok := true
	for i, a := range addrs {
		p, err := obs.Fetch(httpc, a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "top: node %d (%s): %v\n", i, a, err)
			ok = false
			continue
		}
		pages[i] = p
	}
	return pages, ok
}

// checkRequired verifies each reachable node serves every required series.
func checkRequired(addrs []string, pages []*obs.Page) bool {
	ok := true
	for i, p := range pages {
		if p == nil {
			ok = false
			continue
		}
		for _, name := range requiredSeries {
			if !p.Has(name) {
				fmt.Fprintf(os.Stderr, "top: node %d (%s): missing required series %s\n", i, addrs[i], name)
				ok = false
			}
		}
	}
	return ok
}

// printFrame renders one frame. With a previous scrape the cluster line and
// stage table show interval rates/quantiles (the live view); without one
// (first frame, -once) they show cumulative totals.
func printFrame(addrs []string, pages, prev []*obs.Page, elapsed time.Duration) {
	merged := obs.MergePages(pages)
	up := 0
	for _, p := range pages {
		if p != nil {
			up++
		}
	}
	fmt.Printf("sss top  %s  nodes %d/%d up\n",
		time.Now().Format("15:04:05"), up, len(addrs))

	commits := merged.Counter("sss_commits_total")
	aborts := merged.Counter("sss_aborts_total")
	ro := merged.Counter("sss_read_only_runs_total")
	if prev != nil && elapsed > 0 {
		pm := obs.MergePages(prev)
		dc := commits - pm.Counter("sss_commits_total")
		da := aborts - pm.Counter("sss_aborts_total")
		dro := ro - pm.Counter("sss_read_only_runs_total")
		secs := elapsed.Seconds()
		fmt.Printf("cluster  %.0f txn/s (update %.0f/s, read-only %.0f/s)  abort %s  interval %v\n",
			(dc+dro)/secs, dc/secs, dro/secs, pct(da, dc+dro+da), elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("cluster  commits=%.0f read-only=%.0f aborts=%.0f  abort %s  (cumulative)\n",
			commits, ro, aborts, pct(aborts, commits+ro+aborts))
	}

	// Stage table: interval quantiles when a previous scrape exists,
	// cumulative otherwise.
	fmt.Printf("%-12s %10s %10s %10s\n", "stage", "count", "p50", "p99")
	for _, st := range []struct{ label, series string }{
		{"vote", "sss_stage_vote_seconds"},
		{"decide", "sss_stage_decide_seconds"},
		{"freeze", "sss_stage_freeze_seconds"},
		{"purge", "sss_stage_purge_seconds"},
		{"wal-sync", "sss_stage_wal_sync_seconds"},
		{"client-ack", "sss_stage_client_ack_seconds"},
	} {
		h := merged.Hists[st.series]
		if h == nil {
			fmt.Printf("%-12s %10s %10s %10s\n", st.label, "-", "-", "-")
			continue
		}
		if prev != nil {
			h = h.Delta(obs.MergePages(prev).Hists[st.series])
		}
		s := h.Snapshot()
		fmt.Printf("%-12s %10d %10v %10v\n", st.label, s.Count, s.P50, s.P99)
	}

	// Peer-link health: cumulative counters — resends and unresponsive-peer
	// flags stay zero on a healthy cluster, so any growth is signal.
	fmt.Printf("links    resends=%.0f unresponsive=%.0f redials=%.0f discarded=%.0f  wal-sync-failures=%.0f\n",
		merged.Counter("sss_transport_batch_resends_total"),
		merged.Counter("sss_transport_peer_unresponsive_total"),
		merged.Counter("sss_transport_redials_total"),
		merged.Counter("sss_transport_discarded_conns_total"),
		merged.Counter("sss_wal_sync_failures_total"))

	// Per-node rows: commit counter and link health at a glance.
	for i, p := range pages {
		if p == nil {
			fmt.Printf("node %-3d %s DOWN\n", i, addrs[i])
			continue
		}
		fmt.Printf("node %-3d %s commits=%.0f aborts=%.0f resends=%.0f\n",
			i, addrs[i],
			p.Counter("sss_commits_total"),
			p.Counter("sss_aborts_total"),
			p.Counter("sss_transport_batch_resends_total"))
	}
	fmt.Println()
}

// pct formats num/den as a percentage ("0.0%" when the denominator is 0).
func pct(num, den float64) string {
	if den <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}
