// Command sss-server runs one SSS node over real TCP, for multi-process
// deployments. The cluster address book is given as a comma-separated list
// of host:port pairs (index = node ID); -id selects which entry this
// process serves.
//
// Clients speak the binary protocol of internal/clientproto on
// -client-addr, served by a concurrent session manager: one connection
// multiplexes many interleaved transactions, requests are pipelined and
// answered out of order by request ID, and a dropped connection aborts
// every transaction still open on it. Use the client package
// (github.com/sss-paper/sss/client) or cmd/sss-client to talk to it.
//
// With -metrics-addr the server additionally serves every internal/metrics
// family — engine, per-stage commit histograms, transport, client sessions,
// contention, durability — as a Prometheus text exposition page on
// /metrics (see internal/obs). `sss-client top` polls these endpoints for
// a live cluster view.
//
// Logs are structured key=value records (log/slog) on stderr with a
// node=<id> field; SSS_LOG_LEVEL=debug|info|warn|error selects the level.
//
// Example 3-node cluster on one machine:
//
//	sss-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client-addr :8000 -metrics-addr :9000
//	sss-server -id 1 -peers ...                                          -client-addr :8001 -metrics-addr :9001
//	sss-server -id 2 -peers ...                                          -client-addr :8002 -metrics-addr :9002
//
// On SIGINT/SIGTERM the server drains client sessions (aborting open
// transactions), prints the session-manager counters, flushes any requested
// profiles, and exits.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/sss-paper/sss/internal/clientproto"
	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/engine"
	"github.com/sss-paper/sss/internal/obs"
	"github.com/sss-paper/sss/internal/obs/slogx"
	"github.com/sss-paper/sss/internal/profiling"
	"github.com/sss-paper/sss/internal/transport"
	"github.com/sss-paper/sss/internal/wal"
	"github.com/sss-paper/sss/internal/wire"
	"github.com/sss-paper/sss/kv"
)

var (
	id            = flag.Int("id", 0, "this node's ID (index into -peers)")
	peers         = flag.String("peers", "127.0.0.1:7000", "comma-separated node addresses")
	clientAddr    = flag.String("client-addr", ":8000", "listen address for the client protocol")
	metricsAddr   = flag.String("metrics-addr", "", "listen address for the Prometheus /metrics endpoint (empty = disabled)")
	degree        = flag.Int("replication", 2, "replication degree")
	batchMax      = flag.Int("batch-max", 0, "max envelopes per transport batch frame (0 = default 64)")
	batchWin      = flag.Duration("batch-window", 0, "flush window per-peer senders wait to accumulate batches (0 = flush immediately)")
	workers       = flag.Int("inbound-workers", 0, "inbound dispatch pool size (0 = 8×GOMAXPROCS, clamped to [32, 256])")
	clientWorkers = flag.Int("client-workers", 0, "client request handler pool size (0 = same default)")

	dataDir  = flag.String("data-dir", "", "WAL/checkpoint directory; enables durability and crash recovery (must exist)")
	ckptIntv = flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint interval bounding WAL replay (0 disables; needs -data-dir)")

	voteTimeout     = flag.Duration("vote-timeout", 0, "2PC vote collection timeout (0 = engine default)")
	drainTimeout    = flag.Duration("drain-timeout", 0, "pre-commit snapshot-queue drain timeout (0 = engine default)")
	freezeAckBudget = flag.Duration("freeze-ack-budget", 0, "how long the client ack is withheld while a freeze redelivers (0 = engine default 2×vote-timeout, negative disables)")
	readerPark      = flag.Duration("reader-park", 0, "bound for read-only reads parking on decided-but-unstamped writers (0 = off)")

	cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file on SIGINT/SIGTERM")
	mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on SIGINT/SIGTERM")
	blockProfile = flag.String("blockprofile", "", "write a blocking profile to this file on SIGINT/SIGTERM")
)

// engineStore adapts the engine node to kv.Store for the session manager.
type engineStore struct{ node *engine.Node }

func (s engineStore) Begin(readOnly bool) kv.Txn { return s.node.Begin(readOnly) }

func main() {
	flag.Parse()
	logger := slogx.New(os.Stderr, slog.Int("node", *id))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	addrs := strings.Split(*peers, ",")
	if *id < 0 || *id >= len(addrs) {
		fatal("node id out of range", "id", *id, "peers", len(addrs))
	}
	profCfg := profiling.Config{CPU: *cpuProfile, Mutex: *mutexProfile, Block: *blockProfile}
	stopProf := func() error { return nil }
	if profCfg.Enabled() {
		var err error
		stopProf, err = profiling.Start(profCfg)
		if err != nil {
			fatal("profiling", "err", err)
		}
	}
	book := make(map[wire.NodeID]string, len(addrs))
	for i, a := range addrs {
		book[wire.NodeID(i)] = strings.TrimSpace(a)
	}
	net_ := transport.NewTCPTuned(book, transport.Tuning{
		MaxBatch:    *batchMax,
		FlushWindow: *batchWin,
		Workers:     *workers,
	})
	lookup := cluster.NewLookup(len(addrs), *degree)
	cfg := engine.Config{
		VoteTimeout:     *voteTimeout,
		DrainTimeout:    *drainTimeout,
		FreezeAckBudget: *freezeAckBudget,
		ReaderPark:      *readerPark,
	}
	var wlog *wal.Log
	if *dataDir != "" {
		walOpts := wal.Options{}
		// SSS_WAL_FAULT routes all WAL file I/O through a fault injector
		// (chaos harness only): the fault spec is shared cluster-wide via
		// the environment, but stays dormant until the per-node trigger
		// file appears — SSS_WAL_FAULT_TRIGGER, default <data-dir>/FAULT.
		if spec := os.Getenv("SSS_WAL_FAULT"); spec != "" {
			trigger := os.Getenv("SSS_WAL_FAULT_TRIGGER")
			if trigger == "" {
				trigger = *dataDir + "/FAULT"
			}
			inj, err := wal.ParseFault(spec, trigger)
			if err != nil {
				fatal("SSS_WAL_FAULT", "err", err)
			}
			walOpts.OpenFile = inj.OpenFile
			logger.Info("WAL fault injector active", "spec", spec, "trigger", trigger)
		}
		// Fail fast, before joining the cluster: wal.Open rejects a missing
		// or non-directory path, an unwritable one, and a directory still
		// flock-held by another live server — each with a specific error.
		var err error
		wlog, err = wal.Open(*dataDir, walOpts)
		if err != nil {
			fatal("data directory", "err", err)
		}
		cfg.WAL = wlog
		cfg.CheckpointInterval = *ckptIntv
	}
	node, err := engine.New(net_, wire.NodeID(*id), len(addrs), lookup, cfg)
	if err != nil {
		fatal("start node", "err", err)
	}
	if wlog != nil {
		// Replay the checkpoint and WAL, resolving in-doubt transactions
		// against the peers, before the client listener opens: nothing may
		// observe pre-recovery state. The node drops cluster traffic (other
		// than serving peers' recovery queries) until Recover returns.
		start := time.Now()
		if err := node.Recover(); err != nil {
			fatal("recover failed", "dir", *dataDir, "err", err)
		}
		d := node.Durability().Snapshot()
		// Message shape is load-bearing: the crash e2e and the verify drill
		// grep server logs for "recovered from".
		logger.Info(fmt.Sprintf("recovered from %s in %v: %d records scanned, %d commits replayed, %d in-doubt (%d committed, %d aborted)",
			*dataDir, time.Since(start).Round(time.Millisecond),
			d.ReplayRecords, d.ReplayedCommits, d.InDoubt, d.InDoubtCommitted, d.InDoubtAborted))
	}
	logger.Info("sss-server up", "peers", *peers, "replication", *degree, "durability", wlog != nil)

	ln, err := net.Listen("tcp", *clientAddr)
	if err != nil {
		fatal("client listener", "err", err)
	}
	logger.Info(fmt.Sprintf("client protocol on %s", ln.Addr()))
	srv := clientproto.NewServer(engineStore{node}, clientproto.ServerOptions{
		Workers: *clientWorkers,
		Logf:    slogx.Logf(logger),
		// The client-ack stage rides the engine's stage family so the
		// protocol handoff appears in the same per-stage decomposition.
		CommitAck: &node.Stats().Stage.ClientAck,
	})

	// The observability surface: one registry walking every metrics family,
	// served as Prometheus text exposition. Registration is the seam — any
	// counter later added to these structs is exported automatically.
	var metricsLn net.Listener
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register("", node.Stats())
		reg.Register("", node.Durability())
		reg.Register("transport", net_.Metrics())
		reg.Register("client", srv.Metrics())
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		metricsLn, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal("metrics listener", "err", err)
		}
		logger.Info(fmt.Sprintf("metrics on http://%s/metrics", metricsLn.Addr()))
		go func() { _ = http.Serve(metricsLn, mux) }()
	}

	// Graceful shutdown: drain sessions (aborting open transactions) so a
	// killed server never strands snapshot-queue entries at its peers,
	// then flush profiles. The drain is bounded: an in-flight Commit parks
	// until external commit, which can never arrive if the peers were
	// SIGTERMed in the same sweep (a whole-cluster shutdown), so after the
	// bound we abandon the stuck handlers rather than hang forever.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-sigs
		// The "<family>: <counters>" message shapes below are load-bearing:
		// the TCP bench harvester and the crash e2e grep these lines out of
		// captured server logs.
		logger.Info(fmt.Sprintf("shutting down: %s", srv.Metrics().Snapshot()))
		logger.Info(fmt.Sprintf("transport: %s", net_.Metrics().Snapshot()))
		logger.Info(fmt.Sprintf("engine: %s", node.Stats().CountersSnapshot()))
		logger.Info(fmt.Sprintf("stages: %s", node.Stats().Stage.Snapshot()))
		logger.Info(fmt.Sprintf("contention: %s", node.Stats().Contention.Snapshot()))
		if wlog != nil {
			logger.Info(fmt.Sprintf("durability: %s", node.Durability().Snapshot()))
		}
		if metricsLn != nil {
			_ = metricsLn.Close()
		}
		drained := make(chan struct{})
		go func() {
			_ = srv.Close()
			close(drained)
		}()
		select {
		case <-drained:
			_ = node.Close()
			_ = net_.Close()
			if wlog != nil {
				// After node.Close: no appender is left, so this flushes the
				// tail and releases the directory lock for the next boot.
				_ = wlog.Close()
			}
		case <-time.After(5 * time.Second):
			logger.Warn("session drain timed out (in-flight commits waiting on dead peers?); exiting anyway")
		}
		if err := stopProf(); err != nil {
			logger.Error("profiling", "err", err)
		} else if profCfg.Enabled() {
			logger.Info("profiles written", "cpu", *cpuProfile, "mutex", *mutexProfile, "block", *blockProfile)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		fatal("serve", "err", err)
	}
	// Serve returns once srv.Close() shuts the listener — i.e. mid-way
	// through the signal goroutine's drain sequence. Falling off main here
	// would kill the process before open transactions are aborted and
	// profiles flushed; wait for the shutdown to actually finish.
	<-shutdownDone
}
