// Command sss-server runs one SSS node over real TCP, for multi-process
// deployments. The cluster address book is given as a comma-separated list
// of host:port pairs (index = node ID); -id selects which entry this
// process serves.
//
// Clients speak the binary protocol of internal/clientproto on
// -client-addr, served by a concurrent session manager: one connection
// multiplexes many interleaved transactions, requests are pipelined and
// answered out of order by request ID, and a dropped connection aborts
// every transaction still open on it. Use the client package
// (github.com/sss-paper/sss/client) or cmd/sss-client to talk to it.
//
// Example 3-node cluster on one machine:
//
//	sss-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client-addr :8000
//	sss-server -id 1 -peers ...                                          -client-addr :8001
//	sss-server -id 2 -peers ...                                          -client-addr :8002
//
// On SIGINT/SIGTERM the server drains client sessions (aborting open
// transactions), prints the session-manager counters, flushes any requested
// profiles, and exits.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/sss-paper/sss/internal/clientproto"
	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/engine"
	"github.com/sss-paper/sss/internal/profiling"
	"github.com/sss-paper/sss/internal/transport"
	"github.com/sss-paper/sss/internal/wal"
	"github.com/sss-paper/sss/internal/wire"
	"github.com/sss-paper/sss/kv"
)

var (
	id            = flag.Int("id", 0, "this node's ID (index into -peers)")
	peers         = flag.String("peers", "127.0.0.1:7000", "comma-separated node addresses")
	clientAddr    = flag.String("client-addr", ":8000", "listen address for the client protocol")
	degree        = flag.Int("replication", 2, "replication degree")
	batchMax      = flag.Int("batch-max", 0, "max envelopes per transport batch frame (0 = default 64)")
	batchWin      = flag.Duration("batch-window", 0, "flush window per-peer senders wait to accumulate batches (0 = flush immediately)")
	workers       = flag.Int("inbound-workers", 0, "inbound dispatch pool size (0 = 8×GOMAXPROCS, clamped to [32, 256])")
	clientWorkers = flag.Int("client-workers", 0, "client request handler pool size (0 = same default)")

	dataDir  = flag.String("data-dir", "", "WAL/checkpoint directory; enables durability and crash recovery (must exist)")
	ckptIntv = flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint interval bounding WAL replay (0 disables; needs -data-dir)")

	voteTimeout     = flag.Duration("vote-timeout", 0, "2PC vote collection timeout (0 = engine default)")
	drainTimeout    = flag.Duration("drain-timeout", 0, "pre-commit snapshot-queue drain timeout (0 = engine default)")
	freezeAckBudget = flag.Duration("freeze-ack-budget", 0, "how long the client ack is withheld while a freeze redelivers (0 = engine default 2×vote-timeout, negative disables)")
	readerPark      = flag.Duration("reader-park", 0, "bound for read-only reads parking on decided-but-unstamped writers (0 = off)")

	cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file on SIGINT/SIGTERM")
	mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on SIGINT/SIGTERM")
	blockProfile = flag.String("blockprofile", "", "write a blocking profile to this file on SIGINT/SIGTERM")
)

// engineStore adapts the engine node to kv.Store for the session manager.
type engineStore struct{ node *engine.Node }

func (s engineStore) Begin(readOnly bool) kv.Txn { return s.node.Begin(readOnly) }

func main() {
	flag.Parse()
	addrs := strings.Split(*peers, ",")
	if *id < 0 || *id >= len(addrs) {
		log.Fatalf("-id %d out of range for %d peers", *id, len(addrs))
	}
	profCfg := profiling.Config{CPU: *cpuProfile, Mutex: *mutexProfile, Block: *blockProfile}
	stopProf := func() error { return nil }
	if profCfg.Enabled() {
		var err error
		stopProf, err = profiling.Start(profCfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	book := make(map[wire.NodeID]string, len(addrs))
	for i, a := range addrs {
		book[wire.NodeID(i)] = strings.TrimSpace(a)
	}
	net_ := transport.NewTCPTuned(book, transport.Tuning{
		MaxBatch:    *batchMax,
		FlushWindow: *batchWin,
		Workers:     *workers,
	})
	lookup := cluster.NewLookup(len(addrs), *degree)
	cfg := engine.Config{
		VoteTimeout:     *voteTimeout,
		DrainTimeout:    *drainTimeout,
		FreezeAckBudget: *freezeAckBudget,
		ReaderPark:      *readerPark,
	}
	var wlog *wal.Log
	if *dataDir != "" {
		walOpts := wal.Options{}
		// SSS_WAL_FAULT routes all WAL file I/O through a fault injector
		// (chaos harness only): the fault spec is shared cluster-wide via
		// the environment, but stays dormant until the per-node trigger
		// file appears — SSS_WAL_FAULT_TRIGGER, default <data-dir>/FAULT.
		if spec := os.Getenv("SSS_WAL_FAULT"); spec != "" {
			trigger := os.Getenv("SSS_WAL_FAULT_TRIGGER")
			if trigger == "" {
				trigger = *dataDir + "/FAULT"
			}
			inj, err := wal.ParseFault(spec, trigger)
			if err != nil {
				log.Fatalf("SSS_WAL_FAULT: %v", err)
			}
			walOpts.OpenFile = inj.OpenFile
			log.Printf("WAL fault injector active: %s (trigger %s)", spec, trigger)
		}
		// Fail fast, before joining the cluster: wal.Open rejects a missing
		// or non-directory path, an unwritable one, and a directory still
		// flock-held by another live server — each with a specific error.
		var err error
		wlog, err = wal.Open(*dataDir, walOpts)
		if err != nil {
			log.Fatalf("data directory: %v", err)
		}
		cfg.WAL = wlog
		cfg.CheckpointInterval = *ckptIntv
	}
	node, err := engine.New(net_, wire.NodeID(*id), len(addrs), lookup, cfg)
	if err != nil {
		log.Fatalf("start node: %v", err)
	}
	if wlog != nil {
		// Replay the checkpoint and WAL, resolving in-doubt transactions
		// against the peers, before the client listener opens: nothing may
		// observe pre-recovery state. The node drops cluster traffic (other
		// than serving peers' recovery queries) until Recover returns.
		start := time.Now()
		if err := node.Recover(); err != nil {
			log.Fatalf("recover from %s: %v", *dataDir, err)
		}
		d := node.Durability().Snapshot()
		log.Printf("recovered from %s in %v: %d records scanned, %d commits replayed, %d in-doubt (%d committed, %d aborted)",
			*dataDir, time.Since(start).Round(time.Millisecond),
			d.ReplayRecords, d.ReplayedCommits, d.InDoubt, d.InDoubtCommitted, d.InDoubtAborted)
	}
	log.Printf("sss-server node %d up; peers=%v replication=%d durability=%v", *id, addrs, *degree, wlog != nil)

	ln, err := net.Listen("tcp", *clientAddr)
	if err != nil {
		log.Fatalf("client listener: %v", err)
	}
	log.Printf("client protocol on %s", ln.Addr())
	srv := clientproto.NewServer(engineStore{node}, clientproto.ServerOptions{
		Workers: *clientWorkers,
		Logf:    log.Printf,
	})

	// Graceful shutdown: drain sessions (aborting open transactions) so a
	// killed server never strands snapshot-queue entries at its peers,
	// then flush profiles. The drain is bounded: an in-flight Commit parks
	// until external commit, which can never arrive if the peers were
	// SIGTERMed in the same sweep (a whole-cluster shutdown), so after the
	// bound we abandon the stuck handlers rather than hang forever.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-sigs
		log.Printf("shutting down: %s", srv.Metrics().Snapshot())
		log.Printf("transport: %s", net_.Metrics().Snapshot())
		log.Printf("engine: %s", node.Stats().CountersSnapshot())
		log.Printf("contention: %s", node.Stats().Contention.Snapshot())
		if wlog != nil {
			log.Printf("durability: %s", node.Durability().Snapshot())
		}
		drained := make(chan struct{})
		go func() {
			_ = srv.Close()
			close(drained)
		}()
		select {
		case <-drained:
			_ = node.Close()
			_ = net_.Close()
			if wlog != nil {
				// After node.Close: no appender is left, so this flushes the
				// tail and releases the directory lock for the next boot.
				_ = wlog.Close()
			}
		case <-time.After(5 * time.Second):
			log.Printf("session drain timed out (in-flight commits waiting on dead peers?); exiting anyway")
		}
		if err := stopProf(); err != nil {
			log.Printf("profiling: %v", err)
		} else if profCfg.Enabled() {
			log.Printf("profiles written (cpu=%q mutex=%q block=%q)", *cpuProfile, *mutexProfile, *blockProfile)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
	// Serve returns once srv.Close() shuts the listener — i.e. mid-way
	// through the signal goroutine's drain sequence. Falling off main here
	// would kill the process before open transactions are aborted and
	// profiles flushed; wait for the shutdown to actually finish.
	<-shutdownDone
}
