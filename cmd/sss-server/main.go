// Command sss-server runs one SSS node over real TCP, for multi-process
// deployments. The cluster address book is given as a comma-separated list
// of host:port pairs (index = node ID); -id selects which entry this
// process serves. A small line-oriented client protocol is exposed on
// -client-addr for sss-client:
//
//	BEGIN ro|rw          -> OK <txn>
//	READ <txn> <key>     -> VAL <base64> | NIL
//	WRITE <txn> <key> <base64>
//	COMMIT <txn>         -> OK | ABORTED
//	ABORT <txn>          -> OK
//
// Example 3-node cluster on one machine:
//
//	sss-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client-addr :8000
//	sss-server -id 1 -peers ...                                          -client-addr :8001
//	sss-server -id 2 -peers ...                                          -client-addr :8002
package main

import (
	"bufio"
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/engine"
	"github.com/sss-paper/sss/internal/profiling"
	"github.com/sss-paper/sss/internal/transport"
	"github.com/sss-paper/sss/internal/wire"
)

var (
	id         = flag.Int("id", 0, "this node's ID (index into -peers)")
	peers      = flag.String("peers", "127.0.0.1:7000", "comma-separated node addresses")
	clientAddr = flag.String("client-addr", ":8000", "listen address for the client protocol")
	degree     = flag.Int("replication", 2, "replication degree")
	batchMax   = flag.Int("batch-max", 0, "max envelopes per transport batch frame (0 = default 64)")
	batchWin   = flag.Duration("batch-window", 0, "flush window per-peer senders wait to accumulate batches (0 = flush immediately)")
	workers    = flag.Int("inbound-workers", 0, "inbound dispatch pool size (0 = 8×GOMAXPROCS, clamped to [32, 256])")

	cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file on SIGINT/SIGTERM")
	mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on SIGINT/SIGTERM")
	blockProfile = flag.String("blockprofile", "", "write a blocking profile to this file on SIGINT/SIGTERM")
)

func main() {
	flag.Parse()
	addrs := strings.Split(*peers, ",")
	if *id < 0 || *id >= len(addrs) {
		log.Fatalf("-id %d out of range for %d peers", *id, len(addrs))
	}
	profCfg := profiling.Config{CPU: *cpuProfile, Mutex: *mutexProfile, Block: *blockProfile}
	if profCfg.Enabled() {
		stopProf, err := profiling.Start(profCfg)
		if err != nil {
			log.Fatal(err)
		}
		// Profiles are flushed on SIGINT/SIGTERM, then the process exits.
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sigs
			if err := stopProf(); err != nil {
				log.Printf("profiling: %v", err)
			} else {
				log.Printf("profiles written (cpu=%q mutex=%q block=%q)", *cpuProfile, *mutexProfile, *blockProfile)
			}
			os.Exit(0)
		}()
	}
	book := make(map[wire.NodeID]string, len(addrs))
	for i, a := range addrs {
		book[wire.NodeID(i)] = strings.TrimSpace(a)
	}
	net_ := transport.NewTCPTuned(book, transport.Tuning{
		MaxBatch:    *batchMax,
		FlushWindow: *batchWin,
		Workers:     *workers,
	})
	lookup := cluster.NewLookup(len(addrs), *degree)
	node, err := engine.New(net_, wire.NodeID(*id), len(addrs), lookup, engine.Config{})
	if err != nil {
		log.Fatalf("start node: %v", err)
	}
	log.Printf("sss-server node %d up; peers=%v replication=%d", *id, addrs, *degree)

	ln, err := net.Listen("tcp", *clientAddr)
	if err != nil {
		log.Fatalf("client listener: %v", err)
	}
	log.Printf("client protocol on %s", ln.Addr())
	srv := &clientServer{node: node, txns: make(map[uint64]*engine.Txn)}
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		go srv.serve(conn)
	}
}

type clientServer struct {
	node *engine.Node

	mu     sync.Mutex
	nextID uint64
	txns   map[uint64]*engine.Txn
}

func (s *clientServer) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
		_ = w.Flush()
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "BEGIN":
			readOnly := len(fields) > 1 && strings.EqualFold(fields[1], "ro")
			s.mu.Lock()
			s.nextID++
			handle := s.nextID
			s.txns[handle] = s.node.Begin(readOnly)
			s.mu.Unlock()
			reply("OK %d", handle)
		case "READ":
			tx, ok := s.txn(fields, 3)
			if !ok {
				reply("ERR bad txn")
				continue
			}
			val, exists, err := tx.Read(fields[2])
			switch {
			case err != nil:
				reply("ERR %v", err)
			case !exists:
				reply("NIL")
			default:
				reply("VAL %s", base64.StdEncoding.EncodeToString(val))
			}
		case "WRITE":
			tx, ok := s.txn(fields, 4)
			if !ok {
				reply("ERR bad txn")
				continue
			}
			val, err := base64.StdEncoding.DecodeString(fields[3])
			if err != nil {
				reply("ERR bad value encoding")
				continue
			}
			if err := tx.Write(fields[2], val); err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "COMMIT":
			tx, ok := s.txn(fields, 2)
			if !ok {
				reply("ERR bad txn")
				continue
			}
			s.drop(fields[1])
			if err := tx.Commit(); err != nil {
				reply("ABORTED")
				continue
			}
			reply("OK")
		case "ABORT":
			tx, ok := s.txn(fields, 2)
			if !ok {
				reply("ERR bad txn")
				continue
			}
			s.drop(fields[1])
			_ = tx.Abort()
			reply("OK")
		default:
			reply("ERR unknown command %q", fields[0])
		}
	}
}

func (s *clientServer) txn(fields []string, minLen int) (*engine.Txn, bool) {
	if len(fields) < minLen {
		return nil, false
	}
	handle, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, ok := s.txns[handle]
	return tx, ok
}

func (s *clientServer) drop(handleStr string) {
	handle, err := strconv.ParseUint(handleStr, 10, 64)
	if err != nil {
		return
	}
	s.mu.Lock()
	delete(s.txns, handle)
	s.mu.Unlock()
}
