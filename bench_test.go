package sss

// One benchmark per figure of the paper's evaluation (§V). Each bench runs
// the YCSB workload of the corresponding experiment on the simulated
// cluster (20µs message latency, as the paper's testbed) and reports
// throughput and the figure's headline metrics via b.ReportMetric, printing
// the same series the paper plots. Node counts are laptop-scaled stand-ins
// ({2,4,6} for the paper's {5,10,15,20}); EXPERIMENTS.md records the
// shape comparison. Durations are short by default; raise -benchtime for
// smoother curves.

import (
	"fmt"
	"testing"
	"time"

	"github.com/sss-paper/sss/internal/bench"
	"github.com/sss-paper/sss/internal/cluster"
	"github.com/sss-paper/sss/internal/metrics"
	"github.com/sss-paper/sss/internal/ycsb"
	"github.com/sss-paper/sss/kv"
)

// benchNode adapts the public Node to the harness interface.
type benchNode struct{ n *Node }

func (b benchNode) Begin(readOnly bool) kv.Txn { return b.n.Begin(readOnly) }
func (b benchNode) Stats() *metrics.Engine     { return b.n.engineMetrics() }
func harnessNodes(c *Cluster) []bench.Node     { return mapNodes(c) }
func mapNodes(c *Cluster) (out []bench.Node) {
	for i := 0; i < c.NumNodes(); i++ {
		out = append(out, benchNode{c.Node(i)})
	}
	return out
}

// runPoint assembles a cluster, preloads the keyspace and runs one
// measurement point.
func runPoint(b *testing.B, eng Engine, nodes, degree int, w ycsb.Config, clients int) bench.Result {
	b.Helper()
	c, err := New(Options{Nodes: nodes, ReplicationDegree: degree, Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	for _, k := range ycsb.Keyspace(w.Keys) {
		c.Preload(k, []byte("init"))
	}
	return bench.Run(harnessNodes(c), bench.Options{
		Workload:       w,
		ClientsPerNode: clients,
		Warmup:         50 * time.Millisecond,
		Duration:       300 * time.Millisecond,
		Seed:           1,
		Lookup:         cluster.NewLookup(nodes, degree),
	})
}

// BenchmarkFig3_Throughput regenerates Figure 3: throughput vs node count
// for SSS, 2PC-baseline and Walter at 20/50/80% read-only, 5k and 10k keys,
// replication degree 2. Also reports the abort-rate ranges quoted in §V.
func BenchmarkFig3_Throughput(b *testing.B) {
	for _, ro := range []int{20, 50, 80} {
		for _, keys := range []int{5000, 10000} {
			for _, eng := range []Engine{EngineSSS, Engine2PC, EngineWalter} {
				for _, n := range []int{2, 4, 6} {
					name := fmt.Sprintf("ro=%d/keys=%d/%s/nodes=%d", ro, keys, eng, n)
					b.Run(name, func(b *testing.B) {
						w := ycsb.Config{Keys: keys, ReadOnlyPct: ro}
						for i := 0; i < b.N; i++ {
							res := runPoint(b, eng, n, 2, w, 10)
							b.ReportMetric(res.Throughput, "txn/s")
							b.ReportMetric(res.AbortRate*100, "abort%")
						}
					})
				}
			}
		}
	}
}

// BenchmarkFig4a_MaxThroughput regenerates Figure 4(a): maximum attainable
// throughput of SSS vs 2PC-baseline (clients swept upward), 50% read-only,
// 5k keys.
func BenchmarkFig4a_MaxThroughput(b *testing.B) {
	for _, eng := range []Engine{EngineSSS, Engine2PC} {
		for _, n := range []int{2, 4, 6} {
			b.Run(fmt.Sprintf("%s/nodes=%d", eng, n), func(b *testing.B) {
				w := ycsb.Config{Keys: 5000, ReadOnlyPct: 50}
				for i := 0; i < b.N; i++ {
					best := 0.0
					for _, clients := range []int{10, 20, 40} {
						if tp := runPoint(b, eng, n, 2, w, clients).Throughput; tp > best {
							best = tp
						}
					}
					b.ReportMetric(best, "txn/s")
				}
			})
		}
	}
}

// BenchmarkFig4b_Latency regenerates Figure 4(b): external-commit latency
// of update transactions vs clients per node, 50% read-only, 5k keys.
func BenchmarkFig4b_Latency(b *testing.B) {
	for _, eng := range []Engine{EngineSSS, Engine2PC} {
		for _, clients := range []int{1, 3, 5, 10} {
			b.Run(fmt.Sprintf("%s/clients=%d", eng, clients), func(b *testing.B) {
				w := ycsb.Config{Keys: 5000, ReadOnlyPct: 50}
				for i := 0; i < b.N; i++ {
					res := runPoint(b, eng, 4, 2, w, clients)
					b.ReportMetric(float64(res.UpdateLatency.Mean.Microseconds()), "µs/commit")
				}
			})
		}
	}
}

// BenchmarkFig5_Breakdown regenerates Figure 5: the split of SSS update
// latency into begin→internal-commit and the pre-commit (snapshot-queuing)
// wait. §V reports the wait at ≤ ~30% of total latency.
func BenchmarkFig5_Breakdown(b *testing.B) {
	for _, clients := range []int{1, 3, 5, 10} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			w := ycsb.Config{Keys: 5000, ReadOnlyPct: 50}
			for i := 0; i < b.N; i++ {
				res := runPoint(b, EngineSSS, 4, 2, w, clients)
				internal := float64(res.InternalLatency.Mean.Microseconds())
				wait := float64(res.PreCommitWait.Mean.Microseconds())
				b.ReportMetric(internal, "µs-internal")
				b.ReportMetric(wait, "µs-precommit")
				if internal+wait > 0 {
					b.ReportMetric(100*wait/(internal+wait), "wait%")
				}
			}
		})
	}
}

// BenchmarkFig6_Rococo regenerates Figure 6: SSS vs ROCOCO vs 2PC-baseline
// without replication, 5k keys, at 20% and 80% read-only.
func BenchmarkFig6_Rococo(b *testing.B) {
	for _, ro := range []int{20, 80} {
		for _, eng := range []Engine{EngineSSS, Engine2PC, EngineROCOCO} {
			for _, n := range []int{2, 4, 6} {
				b.Run(fmt.Sprintf("ro=%d/%s/nodes=%d", ro, eng, n), func(b *testing.B) {
					w := ycsb.Config{Keys: 5000, ReadOnlyPct: ro}
					for i := 0; i < b.N; i++ {
						res := runPoint(b, eng, n, 1, w, 10)
						b.ReportMetric(res.Throughput, "txn/s")
					}
				})
			}
		}
	}
}

// BenchmarkFig7_Locality regenerates Figure 7: throughput at 80% read-only
// with 50% key-access locality, replication 2.
func BenchmarkFig7_Locality(b *testing.B) {
	for _, keys := range []int{5000, 10000} {
		for _, eng := range []Engine{EngineSSS, Engine2PC, EngineWalter} {
			for _, n := range []int{2, 4, 6} {
				b.Run(fmt.Sprintf("keys=%d/%s/nodes=%d", keys, eng, n), func(b *testing.B) {
					w := ycsb.Config{
						Keys: keys, ReadOnlyPct: 80,
						Distribution: ycsb.Local, Locality: 0.5,
					}
					for i := 0; i < b.N; i++ {
						res := runPoint(b, eng, n, 2, w, 10)
						b.ReportMetric(res.Throughput, "txn/s")
					}
				})
			}
		}
	}
}

// BenchmarkFig8_ReadOnlySize regenerates Figure 8: the speedup of SSS over
// ROCOCO and 2PC-baseline as read-only transactions grow from 2 to 16 keys
// (80% read-only, no replication).
func BenchmarkFig8_ReadOnlySize(b *testing.B) {
	for _, ops := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("roKeys=%d", ops), func(b *testing.B) {
			w := ycsb.Config{Keys: 5000, ReadOnlyPct: 80, ReadOnlyOps: ops}
			for i := 0; i < b.N; i++ {
				sss := runPoint(b, EngineSSS, 3, 1, w, 10).Throughput
				roc := runPoint(b, EngineROCOCO, 3, 1, w, 10).Throughput
				base := runPoint(b, Engine2PC, 3, 1, w, 10).Throughput
				if roc > 0 {
					b.ReportMetric(sss/roc, "x-vs-rococo")
				}
				if base > 0 {
					b.ReportMetric(sss/base, "x-vs-2pc")
				}
			}
		})
	}
}
