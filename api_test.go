package sss

import (
	"errors"
	"fmt"
	"testing"

	"github.com/sss-paper/sss/kv"
)

func newTestCluster(t *testing.T, eng Engine, nodes, degree int) *Cluster {
	t.Helper()
	c, err := New(Options{Nodes: nodes, ReplicationDegree: degree, Engine: eng, DisableLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Nodes: 0}); err == nil {
		t.Fatal("Nodes=0 must fail")
	}
	if _, err := New(Options{Nodes: 2, Engine: "nope"}); err == nil {
		t.Fatal("unknown engine must fail")
	}
}

func TestAllEnginesBasicRoundTrip(t *testing.T) {
	for _, eng := range []Engine{EngineSSS, Engine2PC, EngineWalter, EngineROCOCO} {
		eng := eng
		t.Run(string(eng), func(t *testing.T) {
			degree := 2
			if eng == EngineROCOCO {
				degree = 1
			}
			c := newTestCluster(t, eng, 3, degree)
			c.Preload("k", []byte("v0"))

			var committed bool
			for attempt := 0; attempt < 20 && !committed; attempt++ {
				tx := c.Node(0).Begin(false)
				if _, _, err := tx.Read("k"); err != nil {
					t.Fatal(err)
				}
				if err := tx.Write("k", []byte("v1")); err != nil {
					t.Fatal(err)
				}
				switch err := tx.Commit(); {
				case err == nil:
					committed = true
				case errors.Is(err, kv.ErrAborted):
				default:
					t.Fatal(err)
				}
			}
			if !committed {
				t.Fatal("update never committed")
			}

			for attempt := 0; attempt < 200; attempt++ {
				ro := c.Node(2).Begin(true)
				v, ok, err := ro.Read("k")
				if err != nil {
					t.Fatal(err)
				}
				if err := ro.Commit(); err != nil {
					if eng == EngineSSS || eng == EngineWalter {
						t.Fatalf("%s read-only aborted: %v", eng, err)
					}
					continue // 2PC/ROCOCO read-only may retry
				}
				if ok && string(v) == "v1" {
					return
				}
				if eng != EngineWalter {
					t.Fatalf("read %q ok=%v, want v1", v, ok)
				}
				// Walter is PSI: remote snapshots converge asynchronously.
			}
			t.Fatal("read-only never observed the committed value")
		})
	}
}

func TestClusterStatsAggregation(t *testing.T) {
	c := newTestCluster(t, EngineSSS, 2, 1)
	c.Preload("k", []byte("v0"))
	tx := c.Node(0).Begin(false)
	_, _, _ = tx.Read("k")
	_ = tx.Write("k", []byte("v1"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ro := c.Node(1).Begin(true)
	_, _, _ = ro.Read("k")
	_ = ro.Commit()

	s := c.Stats()
	if s.Commits != 1 {
		t.Fatalf("Commits = %d, want 1", s.Commits)
	}
	if s.ReadOnly != 1 {
		t.Fatalf("ReadOnly = %d, want 1", s.ReadOnly)
	}
	if s.UpdateLatency.Count != 1 || s.UpdateLatency.Mean <= 0 {
		t.Fatalf("UpdateLatency = %+v", s.UpdateLatency)
	}
	ns := c.Node(0).Stats()
	if ns.Commits != 1 {
		t.Fatalf("node stats Commits = %d", ns.Commits)
	}
}

func TestReplicasAccessor(t *testing.T) {
	c := newTestCluster(t, EngineSSS, 4, 2)
	rs := c.Replicas("anything")
	if len(rs) != 2 {
		t.Fatalf("Replicas = %v, want 2 nodes", rs)
	}
	if rs[0] == rs[1] {
		t.Fatal("replicas must be distinct")
	}
}

func TestManyKeysAcrossEngines(t *testing.T) {
	c := newTestCluster(t, EngineSSS, 3, 2)
	for i := 0; i < 50; i++ {
		c.Preload(fmt.Sprintf("k%d", i), []byte("0"))
	}
	tx := c.Node(1).Begin(true)
	for i := 0; i < 50; i++ {
		if _, ok, err := tx.Read(fmt.Sprintf("k%d", i)); err != nil || !ok {
			t.Fatalf("read k%d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
