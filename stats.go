package sss

import (
	"time"

	"github.com/sss-paper/sss/internal/bench"
	"github.com/sss-paper/sss/internal/metrics"
	"github.com/sss-paper/sss/kv"
)

// LatencySummary is a point-in-time latency distribution summary.
type LatencySummary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// NodeStats is a snapshot of one node's counters.
type NodeStats struct {
	// Commits counts externally committed update transactions this node
	// coordinated; ReadOnly counts completed read-only transactions;
	// Aborts counts update transactions that failed validation or
	// locking (always zero for read-only transactions on the SSS engine).
	Commits  uint64
	ReadOnly uint64
	Aborts   uint64
	// AbortRate is Aborts / (Commits + Aborts).
	AbortRate float64

	// UpdateLatency covers begin → external commit (the client-observable
	// completion). InternalLatency covers begin → commit decision, and
	// PreCommitWait the decision → external-commit interval — the
	// snapshot-queuing delay the paper bounds at ~30% of total latency.
	UpdateLatency   LatencySummary
	InternalLatency LatencySummary
	PreCommitWait   LatencySummary
	ReadOnlyLatency LatencySummary

	// ExternalWaits counts completions delayed behind a parked writer;
	// DrainTimeouts counts safety-cap expirations (0 in healthy runs).
	ExternalWaits uint64
	DrainTimeouts uint64
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	s := n.stats
	return NodeStats{
		Commits:         s.Commits.Load(),
		ReadOnly:        s.ReadOnlyRuns.Load(),
		Aborts:          s.Aborts.Load(),
		AbortRate:       s.AbortRate(),
		UpdateLatency:   summary(&s.CommitLatency),
		InternalLatency: summary(&s.InternalLatency),
		PreCommitWait:   summary(&s.PreCommitWait),
		ReadOnlyLatency: summary(&s.ReadOnlyLatency),
		ExternalWaits:   s.ExternalWaits.Load(),
		DrainTimeouts:   s.DrainTimeouts.Load(),
	}
}

// Stats aggregates all nodes' snapshots.
func (c *Cluster) Stats() NodeStats {
	agg := &metrics.Engine{}
	var out NodeStats
	for _, n := range c.nodes {
		s := n.stats
		out.Commits += s.Commits.Load()
		out.ReadOnly += s.ReadOnlyRuns.Load()
		out.Aborts += s.Aborts.Load()
		out.ExternalWaits += s.ExternalWaits.Load()
		out.DrainTimeouts += s.DrainTimeouts.Load()
		agg.CommitLatency.Merge(&s.CommitLatency)
		agg.InternalLatency.Merge(&s.InternalLatency)
		agg.PreCommitWait.Merge(&s.PreCommitWait)
		agg.ReadOnlyLatency.Merge(&s.ReadOnlyLatency)
	}
	if out.Commits+out.Aborts > 0 {
		out.AbortRate = float64(out.Aborts) / float64(out.Commits+out.Aborts)
	}
	out.UpdateLatency = summary(&agg.CommitLatency)
	out.InternalLatency = summary(&agg.InternalLatency)
	out.PreCommitWait = summary(&agg.PreCommitWait)
	out.ReadOnlyLatency = summary(&agg.ReadOnlyLatency)
	return out
}

func summary(h *metrics.Histogram) LatencySummary {
	s := h.Snapshot()
	return LatencySummary{Count: s.Count, Mean: s.Mean, P50: s.P50, P99: s.P99, Max: s.Max}
}

// engineMetrics exposes the raw metrics to in-module harness code (the
// benchmark runner); not part of the public API surface.
func (n *Node) engineMetrics() *metrics.Engine { return n.stats }

// HarnessNode adapts a Node for the internal benchmark harness
// (cmd/sss-bench and bench_test.go). The returned value's type lives in an
// internal package; external modules should use Begin/Stats directly.
func HarnessNode(n *Node) bench.Node { return harnessAdapter{n} }

type harnessAdapter struct{ n *Node }

// Begin implements bench.Node.
func (h harnessAdapter) Begin(readOnly bool) kv.Txn { return h.n.Begin(readOnly) }

// Stats implements bench.Node.
func (h harnessAdapter) Stats() *metrics.Engine { return h.n.stats }
