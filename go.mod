module github.com/sss-paper/sss

go 1.24
