#!/usr/bin/env bash
# check_bench_json.sh — schema gate for the committed BENCH_*.json
# trajectory snapshots, run in CI so a bench-harvest refactor cannot
# silently commit malformed figure data.
#
# Checks, per snapshot file:
#   - top-level shape: name, generated_at, duration_ns, non-empty points
#   - per point: required identity fields (series, engine, nodes,
#     replication_degree, clients_per_node, keys), sane measurements
#     (throughput >= 0, abort_rate in [0,1]), and complete latency
#     histograms (count/mean_ns/p50_ns/p99_ns/max_ns with p50<=p99<=max)
#   - monotone series labels: within one series, in file order, the node
#     count strictly increases — the figure-3/5 x-axis contract
#   - optional per-stage breakdown ("stages"): same histogram shape per leg
#
# Usage: scripts/check_bench_json.sh [file...]   (default: BENCH_*.json)
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(BENCH_*.json)
fi

python3 - "${files[@]}" <<'EOF'
import json
import sys

HIST_FIELDS = ("count", "mean_ns", "p50_ns", "p99_ns", "max_ns")
STAGE_KEYS = ("vote", "decide", "freeze", "purge", "wal_sync", "client_ack")


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_hist(where, h):
    if not isinstance(h, dict):
        fail(f"{where}: expected a latency object, got {type(h).__name__}")
    for f in HIST_FIELDS:
        if f not in h:
            fail(f"{where}: missing {f}")
        if not isinstance(h[f], (int, float)) or h[f] < 0:
            fail(f"{where}: {f} = {h[f]!r} is not a non-negative number")
    if h["count"] > 0 and not (h["p50_ns"] <= h["p99_ns"] <= h["max_ns"]):
        fail(f"{where}: quantiles out of order: "
             f"p50={h['p50_ns']} p99={h['p99_ns']} max={h['max_ns']}")


def check_file(path):
    with open(path) as f:
        doc = json.load(f)
    for field in ("name", "generated_at", "duration_ns", "points"):
        if field not in doc:
            fail(f"{path}: missing top-level {field}")
    points = doc["points"]
    if not isinstance(points, list) or not points:
        fail(f"{path}: points must be a non-empty list")

    last_nodes = {}  # series -> last node count seen, for monotonicity
    for i, p in enumerate(points):
        where = f"{path} point {i}"
        for field, lo in (("nodes", 1), ("replication_degree", 1),
                          ("clients_per_node", 1), ("keys", 1)):
            if not isinstance(p.get(field), int) or p[field] < lo:
                fail(f"{where}: {field} = {p.get(field)!r}, want int >= {lo}")
        for field in ("series", "engine"):
            if not isinstance(p.get(field), str) or not p[field]:
                fail(f"{where}: {field} missing or empty")
        if not isinstance(p.get("throughput_txn_s"), (int, float)) or p["throughput_txn_s"] < 0:
            fail(f"{where}: throughput_txn_s = {p.get('throughput_txn_s')!r}")
        if not 0 <= p.get("abort_rate", -1) <= 1:
            fail(f"{where}: abort_rate = {p.get('abort_rate')!r}, want [0,1]")
        for field in ("commits", "read_only", "aborts"):
            if not isinstance(p.get(field), int) or p[field] < 0:
                fail(f"{where}: {field} = {p.get(field)!r}")
        for field in ("update_latency", "read_only_latency"):
            if field not in p:
                fail(f"{where}: missing {field}")
            check_hist(f"{where} {field}", p[field])
        if "stages" in p and p["stages"] is not None:
            for leg in STAGE_KEYS:
                if leg not in p["stages"]:
                    fail(f"{where} stages: missing leg {leg}")
                check_hist(f"{where} stages.{leg}", p["stages"][leg])

        series = p["series"]
        if series in last_nodes and p["nodes"] <= last_nodes[series]:
            fail(f"{where}: series {series!r} node count {p['nodes']} "
                 f"does not increase past {last_nodes[series]} — "
                 "trajectory points out of order or duplicated")
        last_nodes[series] = p["nodes"]

    print(f"check_bench_json: {path}: {len(points)} points, "
          f"{len(last_nodes)} series OK")


for path in sys.argv[1:]:
    check_file(path)
EOF
