#!/usr/bin/env bash
# check_allocs.sh — allocs/op regression guard for the hot paths.
#
# Runs the named benchmarks with -benchmem and fails if any exceeds its
# recorded allocs/op ceiling. Ceilings are the measured value plus slack for
# cross-machine variance; lower them when the paths get leaner, never raise
# them without a recorded justification in the PR.
#
# Usage: scripts/check_allocs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# check <package> <bench regex> <benchtime> <ceiling allocs/op> ...
# Each extra pair after the benchtime is "<bench-name-substring> <ceiling>".
check() {
  local pkg=$1 regex=$2 benchtime=$3
  shift 3
  local out
  out=$(go test -run xxx -bench "$regex" -benchtime "$benchtime" -benchmem "$pkg")
  echo "$out" | grep -E '^Benchmark' || true
  while (($# >= 2)); do
    local name=$1 ceiling=$2
    shift 2
    local allocs
    allocs=$(echo "$out" | awk -v name="$name" '$1 ~ name { print $(NF-1); exit }')
    if [[ -z "$allocs" ]]; then
      echo "FAIL: benchmark matching $name not found in $pkg output" >&2
      fail=1
      continue
    fi
    if ((allocs > ceiling)); then
      echo "FAIL: $name allocs/op = $allocs exceeds ceiling $ceiling" >&2
      fail=1
    else
      echo "ok: $name allocs/op = $allocs (ceiling $ceiling)"
    fi
  done
}

# Read-only transaction end-to-end (Begin + reads + Commit). Seed was 33
# (ops=1) and 100 (ops=4) allocs/op; the PR-2 diet brought them to 27/64 and
# the PR-4 transport-channel pooling + warm caller pool to 25/58.
check ./internal/engine 'BenchmarkReadOnlyTxn/ops' 2000x \
  'BenchmarkReadOnlyTxn/ops=1' 28 \
  'BenchmarkReadOnlyTxn/ops=4' 64

# Update transaction end-to-end (Begin + read-modify-writes + Commit through
# prepare, piggybacked decide+drain, queued freeze/purge). Pre-diet baseline
# was 114/133 (local) and 184 (remote) allocs/op; the write-side diet
# (commit scratch, pooled RPC channels, warm callers, batch reuse,
# single-replica update reads) measures 78/95 and 116.
check ./internal/engine 'BenchmarkUpdateTxnCommit' 2000x \
  'BenchmarkUpdateTxnCommit/ops=1' 85 \
  'BenchmarkUpdateTxnCommit/ops=2' 105 \
  'BenchmarkUpdateTxnCommitRemote' 130

# Client path over loopback TCP (wire codec, coalescing send queue, reply
# demux; the server side of the connection is included). Measured 60/73/130
# allocs/op when the lane was added (PR-6: auto-batching + one-round
# SnapshotRead).
check ./client 'BenchmarkClientPath' 2000x \
  'BenchmarkClientPath/ro-txn' 70 \
  'BenchmarkClientPath/snapshot-read' 85 \
  'BenchmarkClientPath/update-txn' 150

# Lock table: the single-key and canonicalizing acquire paths and release
# are allocation-free (pooled scratch, recycled lock states, waiter-gated
# broadcasts).
check ./internal/lockmgr 'BenchmarkAcquire/|BenchmarkRelease' 5000x \
  'BenchmarkAcquire/single' 0 \
  'BenchmarkAcquire/multi' 0 \
  'BenchmarkAcquire/sharedOnly' 0 \
  'BenchmarkRelease' 0

# Commitlog visibility-index queries and lock-free clock reads: one result
# clock per query, zero for the in-place folds.
check ./internal/commitlog 'BenchmarkVisibleMax/cap=65536/(unconstrained|bounded|excluded)' 300x \
  'BenchmarkVisibleMax/cap=65536/unconstrained' 1 \
  'BenchmarkVisibleMax/cap=65536/bounded' 1 \
  'BenchmarkVisibleMax/cap=65536/excluded' 2
check ./internal/commitlog 'BenchmarkClockReads' 2000x \
  'BenchmarkClockReads/SnapshotVC' 1 \
  'BenchmarkClockReads/AppliedSelf' 0 \
  'BenchmarkClockReads/FoldExternalInto' 0

exit $fail
