#!/usr/bin/env bash
# e2e_smoke.sh — the end-to-end deployment gate, shared verbatim by the CI
# `e2e` job and local development.
#
# 1. Builds the sss-server, sss-bench and sss-client binaries.
# 2. Boots a 3-node cluster with -metrics-addr, drives commits through it,
#    and scrapes every node's /metrics: `sss-client top -once` gates the
#    required-series contract, then a python check asserts the values
#    reconcile (nonzero sss_commits_total, stage histogram counts equal to
#    it, zero WAL sync failures).
# 3. Runs the multi-process e2e suite (internal/harness): boots a real
#    3-node TCP cluster, checks cross-node write visibility, read-only
#    snapshot coherence under concurrent transfers, that abrupt client
#    disconnects abort their transactions instead of wedging writers, and
#    kill-and-restart recovery (TestCrashRestartRecovery: SIGKILL a durable
#    node mid-load, restart it, assert it rejoins with the bank invariant
#    and snapshot monotonicity intact).
# 4. Runs one short figure-3 point of `sss-bench -transport tcp` against a
#    3-node cluster and checks the JSON snapshot materializes — once
#    in-memory, once with `-durability wal` (real per-node WALs, durability
#    counters harvested into the point).
#
# Usage: scripts/e2e_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

bin_dir="$(mktemp -d)"
out_dir="$(mktemp -d)"
server_pids=""
cleanup() {
  # shellcheck disable=SC2086 # pid list is intentionally word-split
  [ -n "$server_pids" ] && kill $server_pids 2>/dev/null || true
  rm -rf "$bin_dir" "$out_dir"
}
trap cleanup EXIT

echo "== building binaries =="
go build -o "$bin_dir/sss-server" ./cmd/sss-server
go build -o "$bin_dir/sss-bench" ./cmd/sss-bench
go build -o "$bin_dir/sss-client" ./cmd/sss-client

echo "== live /metrics scrape gate (3-node cluster) =="
# CI tests the surface it just shipped: boot a real cluster with the
# metrics endpoint on, drive commits through it, and assert the exposition
# page carries the load-bearing series with reconciling values — nonzero
# commit counter, stage histogram counts equal to it, a clean WAL.
peers="127.0.0.1:7460,127.0.0.1:7461,127.0.0.1:7462"
for i in 0 1 2; do
  "$bin_dir/sss-server" -id "$i" -peers "$peers" \
    -client-addr "127.0.0.1:846$i" -metrics-addr "127.0.0.1:946$i" \
    > "$out_dir/metrics-node$i.log" 2>&1 &
  server_pids="$server_pids $!"
done
for i in 0 1 2; do
  for _ in $(seq 1 50); do
    "$bin_dir/sss-client" -addr "127.0.0.1:846$i" ping >/dev/null 2>&1 && break
    sleep 0.2
  done
  "$bin_dir/sss-client" -addr "127.0.0.1:846$i" ping >/dev/null
done
for i in 0 1 2; do
  for k in $(seq 1 8); do
    "$bin_dir/sss-client" -addr "127.0.0.1:846$i" set "smoke$i-$k" "v$k" >/dev/null
  done
done
# The top subcommand's -once mode is the series-presence gate: it exits
# nonzero if any node is down or missing a required series.
"$bin_dir/sss-client" top -once 127.0.0.1:9460 127.0.0.1:9461 127.0.0.1:9462
python3 - <<'EOF'
import urllib.request

total_commits = 0
for i in range(3):
    page = urllib.request.urlopen(f"http://127.0.0.1:946{i}/metrics", timeout=5).read().decode()
    samples = {}
    for line in page.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        key, _, val = line.rpartition(" ")
        samples[key] = float(val)
    commits = samples["sss_commits_total"]
    for stage in ("vote", "decide", "freeze"):
        count = samples[f"sss_stage_{stage}_seconds_count"]
        assert count == commits, \
            f"node {i}: sss_stage_{stage}_seconds_count {count} != sss_commits_total {commits}"
    assert samples["sss_wal_sync_failures_total"] == 0, \
        f"node {i}: WAL sync failures on a healthy cluster"
    total_commits += commits
assert total_commits >= 24, f"cluster committed {total_commits} < 24 issued updates"
print(f"metrics gate: {total_commits:.0f} commits, stage counts reconcile on all 3 nodes")
EOF
# shellcheck disable=SC2086
kill $server_pids 2>/dev/null || true
wait 2>/dev/null || true
server_pids=""

echo "== multi-process e2e suite (3-node TCP cluster) =="
SSS_E2E_BIN="$bin_dir/sss-server" go test -count=1 -v ./internal/harness | tee "$out_dir/harness.log"
# The restart smoke must prove the at-least-once link path ran: survivors
# rewrite the batches their stale conns to the killed node swallowed, and
# the test logs the SIGTERM-dump total (it also fails itself on zero —
# this guards against the log line silently disappearing).
grep -Eq 'restart smoke: batchResends=[1-9][0-9]*' "$out_dir/harness.log" || {
  echo "e2e_smoke: restart smoke logged no batch resends" >&2
  exit 1
}

echo "== figure-3 TCP bench smoke point =="
(
  cd "$out_dir" # the JSON snapshot lands here, not in the checkout
  "$bin_dir/sss-bench" -transport tcp -server-bin "$bin_dir/sss-server" \
    -figure 3 -nodes 3 -tcp-keys 500 -tcp-ro 50 \
    -duration 300ms -warmup 100ms -json
)
test -s "$out_dir/BENCH_figure3_tcp.json"
python3 -c "
import json, sys
doc = json.load(open('$out_dir/BENCH_figure3_tcp.json'))
pts = doc['points']
assert len(pts) == 1, f'expected 1 point, got {len(pts)}'
p = pts[0]
assert p['nodes'] == 3 and p['engine'] == 'sss-tcp', p
assert p['throughput_txn_s'] > 0, 'cluster served no transactions'
cn = p['client_net']
assert cn['snapshot_reads'] > 0, 'read-only fraction never used SnapshotRead'
assert cn['batch_requests'] == cn['requests'], \
    f\"send queue lost frames: {cn['batch_requests']} flushed of {cn['requests']}\"
print(f\"figure-3 tcp point: {p['throughput_txn_s']:.0f} txn/s on {p['nodes']} nodes, \"
      f\"{cn['snapshot_reads']} snapshot reads, {cn['requests_per_flush']:.2f} req/flush\")
"

echo "== figure-3 TCP durable smoke point (-durability wal) =="
(
  cd "$out_dir"
  rm -f BENCH_figure3_tcp.json
  "$bin_dir/sss-bench" -transport tcp -server-bin "$bin_dir/sss-server" \
    -figure 3 -nodes 3 -tcp-keys 500 -tcp-ro 50 \
    -duration 300ms -warmup 100ms -durability wal -json
)
test -s "$out_dir/BENCH_figure3_tcp.json"
python3 -c "
import json, sys
doc = json.load(open('$out_dir/BENCH_figure3_tcp.json'))
pts = doc['points']
assert len(pts) == 1, f'expected 1 point, got {len(pts)}'
p = pts[0]
assert p['series'].endswith('-wal'), p['series']
assert p['throughput_txn_s'] > 0, 'durable cluster served no transactions'
dur = p['durability']
assert len(dur) == 3, f'expected 3 durability dumps, got {len(dur)}'
assert all('walAppends=' in d and 'syncs=' in d for d in dur), dur
print(f\"figure-3 tcp wal point: {p['throughput_txn_s']:.0f} txn/s durable on {p['nodes']} nodes\")
print('  ' + dur[0])
"

echo "== figure-3 TCP RTT smoke point (-net-delay through the harness relay) =="
(
  cd "$out_dir"
  "$bin_dir/sss-bench" -transport tcp -server-bin "$bin_dir/sss-server" \
    -figure 3 -nodes 2 -tcp-keys 500 -tcp-ro 50 \
    -duration 300ms -warmup 100ms -net-delay 1ms -json
)
test -s "$out_dir/BENCH_figure3_tcp_rtt.json"
python3 -c "
import json, sys
doc = json.load(open('$out_dir/BENCH_figure3_tcp_rtt.json'))
pts = doc['points']
assert len(pts) == 1, f'expected 1 point, got {len(pts)}'
p = pts[0]
assert p['net_delay_ns'] == 1_000_000, p.get('net_delay_ns')
assert p['throughput_txn_s'] > 0, 'delayed cluster served no transactions'
assert p['client_net']['snapshot_reads'] > 0, 'RTT point never used SnapshotRead'
print(f\"figure-3 tcp rtt point: {p['throughput_txn_s']:.0f} txn/s through 1ms RTT\")
"
echo "e2e smoke passed"
