#!/usr/bin/env bash
# e2e_smoke.sh — the end-to-end deployment gate, shared verbatim by the CI
# `e2e` job and local development.
#
# 1. Builds the sss-server and sss-bench binaries.
# 2. Runs the multi-process e2e suite (internal/harness): boots a real
#    3-node TCP cluster, checks cross-node write visibility, read-only
#    snapshot coherence under concurrent transfers, that abrupt client
#    disconnects abort their transactions instead of wedging writers, and
#    kill-and-restart recovery (TestCrashRestartRecovery: SIGKILL a durable
#    node mid-load, restart it, assert it rejoins with the bank invariant
#    and snapshot monotonicity intact).
# 3. Runs one short figure-3 point of `sss-bench -transport tcp` against a
#    3-node cluster and checks the JSON snapshot materializes — once
#    in-memory, once with `-durability wal` (real per-node WALs, durability
#    counters harvested into the point).
#
# Usage: scripts/e2e_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

bin_dir="$(mktemp -d)"
out_dir="$(mktemp -d)"
trap 'rm -rf "$bin_dir" "$out_dir"' EXIT

echo "== building binaries =="
go build -o "$bin_dir/sss-server" ./cmd/sss-server
go build -o "$bin_dir/sss-bench" ./cmd/sss-bench

echo "== multi-process e2e suite (3-node TCP cluster) =="
SSS_E2E_BIN="$bin_dir/sss-server" go test -count=1 -v ./internal/harness | tee "$out_dir/harness.log"
# The restart smoke must prove the at-least-once link path ran: survivors
# rewrite the batches their stale conns to the killed node swallowed, and
# the test logs the SIGTERM-dump total (it also fails itself on zero —
# this guards against the log line silently disappearing).
grep -Eq 'restart smoke: batchResends=[1-9][0-9]*' "$out_dir/harness.log" || {
  echo "e2e_smoke: restart smoke logged no batch resends" >&2
  exit 1
}

echo "== figure-3 TCP bench smoke point =="
(
  cd "$out_dir" # the JSON snapshot lands here, not in the checkout
  "$bin_dir/sss-bench" -transport tcp -server-bin "$bin_dir/sss-server" \
    -figure 3 -nodes 3 -tcp-keys 500 -tcp-ro 50 \
    -duration 300ms -warmup 100ms -json
)
test -s "$out_dir/BENCH_figure3_tcp.json"
python3 -c "
import json, sys
doc = json.load(open('$out_dir/BENCH_figure3_tcp.json'))
pts = doc['points']
assert len(pts) == 1, f'expected 1 point, got {len(pts)}'
p = pts[0]
assert p['nodes'] == 3 and p['engine'] == 'sss-tcp', p
assert p['throughput_txn_s'] > 0, 'cluster served no transactions'
cn = p['client_net']
assert cn['snapshot_reads'] > 0, 'read-only fraction never used SnapshotRead'
assert cn['batch_requests'] == cn['requests'], \
    f\"send queue lost frames: {cn['batch_requests']} flushed of {cn['requests']}\"
print(f\"figure-3 tcp point: {p['throughput_txn_s']:.0f} txn/s on {p['nodes']} nodes, \"
      f\"{cn['snapshot_reads']} snapshot reads, {cn['requests_per_flush']:.2f} req/flush\")
"

echo "== figure-3 TCP durable smoke point (-durability wal) =="
(
  cd "$out_dir"
  rm -f BENCH_figure3_tcp.json
  "$bin_dir/sss-bench" -transport tcp -server-bin "$bin_dir/sss-server" \
    -figure 3 -nodes 3 -tcp-keys 500 -tcp-ro 50 \
    -duration 300ms -warmup 100ms -durability wal -json
)
test -s "$out_dir/BENCH_figure3_tcp.json"
python3 -c "
import json, sys
doc = json.load(open('$out_dir/BENCH_figure3_tcp.json'))
pts = doc['points']
assert len(pts) == 1, f'expected 1 point, got {len(pts)}'
p = pts[0]
assert p['series'].endswith('-wal'), p['series']
assert p['throughput_txn_s'] > 0, 'durable cluster served no transactions'
dur = p['durability']
assert len(dur) == 3, f'expected 3 durability dumps, got {len(dur)}'
assert all('walAppends=' in d and 'syncs=' in d for d in dur), dur
print(f\"figure-3 tcp wal point: {p['throughput_txn_s']:.0f} txn/s durable on {p['nodes']} nodes\")
print('  ' + dur[0])
"

echo "== figure-3 TCP RTT smoke point (-net-delay through the harness relay) =="
(
  cd "$out_dir"
  "$bin_dir/sss-bench" -transport tcp -server-bin "$bin_dir/sss-server" \
    -figure 3 -nodes 2 -tcp-keys 500 -tcp-ro 50 \
    -duration 300ms -warmup 100ms -net-delay 1ms -json
)
test -s "$out_dir/BENCH_figure3_tcp_rtt.json"
python3 -c "
import json, sys
doc = json.load(open('$out_dir/BENCH_figure3_tcp_rtt.json'))
pts = doc['points']
assert len(pts) == 1, f'expected 1 point, got {len(pts)}'
p = pts[0]
assert p['net_delay_ns'] == 1_000_000, p.get('net_delay_ns')
assert p['throughput_txn_s'] > 0, 'delayed cluster served no transactions'
assert p['client_net']['snapshot_reads'] > 0, 'RTT point never used SnapshotRead'
print(f\"figure-3 tcp rtt point: {p['throughput_txn_s']:.0f} txn/s through 1ms RTT\")
"
echo "e2e smoke passed"
