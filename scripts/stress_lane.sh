#!/usr/bin/env bash
# stress_lane.sh — the weekly adversarial-stress sweep, extracted from the
# CI stress job so the scheduled lane and a local reproduction run the same
# entrypoint:
#
#   scripts/stress_lane.sh family    # checked-workload family, 60 runs
#   scripts/stress_lane.sh suite     # stress suite minus bank probes, 10 runs
#   scripts/stress_lane.sh bank      # bank-audit sensitivity gauge (informational)
#   scripts/stress_lane.sh nemesis   # crash-restart nemesis, enforced
#   scripts/stress_lane.sh fault     # fault-matrix lanes, 2 attempts each
#   scripts/stress_lane.sh diskfull  # disk-full lane, 1 attempt, 0 tolerated
#   scripts/stress_lane.sh all       # everything, in the CI order
#
# Thresholds and their calibration are documented inline and in
# docs/CONSISTENCY.md §5-7: the consistency families have measured residual
# violation rates that track execution speed, so red means the *rate*
# moved; the nemesis/fault lanes are real-bug detectors and are enforced.
# Per-family fail counts land in stress-report/counts.txt and each failing
# run's full output is kept as stress-report/<family>-run<i>.log.
set -euo pipefail
cd "$(dirname "$0")/.."

report_dir="${STRESS_REPORT_DIR:-stress-report}"
mkdir -p "$report_dir"
engine_test=/tmp/engine.test

build_engine_test() {
  if [ ! -x "$engine_test" ]; then
    go test -c -o "$engine_test" ./internal/engine
  fi
}

# Checked-workload stress family: the calibrated regression signal
# (measured baseline ~1-4/60 across PR 3 and the PR 4 pipelined commit
# path, same-box interleaved); the threshold sits ~2x above it.
lane_family() {
  build_engine_test
  local fails=0 i
  for i in $(seq 1 60); do
    if ! SSS_STRESS=1 "$engine_test" -test.run 'TestCheckedWorkload' -test.timeout 300s > /tmp/run.log 2>&1; then
      fails=$((fails + 1))
      cp /tmp/run.log "$report_dir/family-run$i.log"
    fi
  done
  echo "checked-workload-family: $fails/60 (measured baseline ~1-4, threshold 8)" | tee -a "$report_dir/counts.txt"
  test "$fails" -le 8
}

lane_suite() {
  build_engine_test
  local fails=0 i
  for i in $(seq 1 10); do
    if ! SSS_STRESS=1 "$engine_test" -test.skip 'TestBank' -test.timeout 600s > /tmp/run.log 2>&1; then
      fails=$((fails + 1))
      cp /tmp/run.log "$report_dir/suite-run$i.log"
    fi
  done
  echo "suite-minus-bank: $fails/10 (threshold 9)" | tee -a "$report_dir/counts.txt"
  test "$fails" -le 9
}

# Bank-audit probes: far more sensitive than the family lane, and their
# absolute level tracks engine throughput (docs/CONSISTENCY.md §6), so
# they run as an informational sensitivity gauge — never enforced.
lane_bank() {
  build_engine_test
  local fails=0 i
  for i in $(seq 1 10); do
    if ! SSS_STRESS=1 "$engine_test" -test.run 'TestBank' -test.timeout 600s > /tmp/run.log 2>&1; then
      fails=$((fails + 1))
      cp /tmp/run.log "$report_dir/bank-run$i.log"
    fi
  done
  echo "bank-gauge: $fails/10 (speed-tracking gauge, docs/CONSISTENCY.md §6; not enforced)" | tee -a "$report_dir/counts.txt"
}

# Crash-restart nemesis: SIGKILL/restart durable nodes round-robin under
# transfer load. Enforced — any violation is a real durability/recovery bug.
lane_nemesis() {
  set -o pipefail
  SSS_STRESS=1 go test -count=1 -v -timeout 600s -run 'TestCrashRestart' ./internal/harness | tee "$report_dir/nemesis.log"
}

# Fault-matrix lanes (docs/ARCHITECTURE.md#fault-matrix): a checker
# violation is a real bug, but a single run can die on harness timing on a
# loaded runner, so each family gets two attempts — red means both failed.
lane_fault() {
  local status=0 fam fails i
  for fam in Partition AsymmetricDelay Pause SlowFsync TornWrite RestartStorm; do
    fails=0
    for i in 1 2; do
      if SSS_STRESS=1 go test -count=1 -v -timeout 900s -run "TestFaultLane${fam}\$" ./internal/harness > /tmp/fault.log 2>&1; then
        break
      fi
      fails=$((fails + 1))
      cp /tmp/fault.log "$report_dir/fault-$fam-run$i.log"
    done
    echo "fault-$fam: $fails/2 attempts failed (threshold 1)" | tee -a "$report_dir/counts.txt"
    test "$fails" -le 1 || status=1
  done
  return $status
}

# Disk-full runs alone at full strictness: its residual ack-vs-stamp
# anomaly is closed by the freeze-ack discipline (docs/CONSISTENCY.md §7),
# so any failure here is a regression, not timing.
lane_diskfull() {
  if SSS_STRESS=1 go test -count=1 -v -timeout 900s -run 'TestFaultLaneDiskFull$' ./internal/harness > /tmp/fault.log 2>&1; then
    echo "fault-DiskFull: 0/1 attempts failed (threshold 0)" | tee -a "$report_dir/counts.txt"
  else
    cp /tmp/fault.log "$report_dir/fault-DiskFull-run1.log"
    echo "fault-DiskFull: 1/1 attempts failed (threshold 0)" | tee -a "$report_dir/counts.txt"
    return 1
  fi
}

lane="${1:-all}"
case "$lane" in
  family)   lane_family ;;
  suite)    lane_suite ;;
  bank)     lane_bank ;;
  nemesis)  lane_nemesis ;;
  fault)    lane_fault ;;
  diskfull) lane_diskfull ;;
  all)
    status=0
    lane_family || status=1
    lane_suite || status=1
    lane_bank
    lane_nemesis || status=1
    lane_fault || status=1
    lane_diskfull || status=1
    exit $status
    ;;
  *)
    echo "usage: scripts/stress_lane.sh [family|suite|bank|nemesis|fault|diskfull|all]" >&2
    exit 2
    ;;
esac
