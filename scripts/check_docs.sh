#!/usr/bin/env bash
# check_docs.sh — documentation health gate.
#
# 1. Intra-repo markdown links: every relative link target in README.md and
#    docs/*.md must exist (fragments are stripped; http(s) links are not
#    fetched).
# 2. Code blocks: every ```go fenced block that declares a package is
#    extracted into a throwaway package directory inside the module and must
#    `go build`. Snippet blocks without a package clause are skipped.
#
# Usage: scripts/check_docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=".docscheck-tmp"
rm -rf "$tmp"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

python3 - "$tmp" <<'EOF'
import os, re, sys, glob

tmp = sys.argv[1]
files = ["README.md"] + sorted(glob.glob("docs/*.md"))
fail = 0

# --- 1. intra-repo link check ---
link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
for f in files:
    text = open(f).read()
    base = os.path.dirname(f)
    for target in link_re.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure fragment: same-file anchor
            continue
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            print(f"FAIL: {f}: broken link -> {target}")
            fail = 1

# --- 2. extract compilable go blocks ---
fence_re = re.compile(r"^```go\s*$(.*?)^```\s*$", re.M | re.S)
n = 0
for f in files:
    text = open(f).read()
    for block in fence_re.findall(text):
        block = block.strip("\n")
        if not re.search(r"^package\s+\w+", block, re.M):
            continue  # snippet, not a compilation unit
        d = os.path.join(tmp, f"block{n:02d}")
        os.makedirs(d, exist_ok=True)
        with open(os.path.join(d, "main.go"), "w") as out:
            out.write(block + "\n")
        print(f"extracted: {f} -> {d}")
        n += 1

sys.exit(fail)
EOF

status=0
for d in "$tmp"/block*/; do
  [ -d "$d" ] || continue
  if ! go build -o /dev/null "./$d" 2> "$tmp/err.log"; then
    echo "FAIL: doc code block in $d does not compile:" >&2
    cat "$tmp/err.log" >&2
    status=1
  else
    echo "ok: $d compiles"
  fi
done

if [ "$status" -ne 0 ]; then
  exit 1
fi
echo "docs check passed"
